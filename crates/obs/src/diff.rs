//! Snapshot comparison — the engine behind `iawj bench-diff`.
//!
//! Matches runs between two [`BenchSnapshot`]s by configuration key
//! (workload, engine, threads, scheduler, scatter, NPJ-table mode) and
//! classifies each pair: throughput regressions past
//! [`DiffThresholds::max_tpt_drop`] and p99 latency regressions past
//! [`DiffThresholds::max_p99_rise`] fail; everything else (including
//! improvements and runs present in only one snapshot) is reported but
//! does not fail. Shared-runner noise is handled by widening the
//! thresholds, not by averaging away the signal.

use crate::snapshot::{BenchSnapshot, RunSnapshot};

/// Relative-change limits past which a diff counts as a regression.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DiffThresholds {
    /// Maximum tolerated fractional throughput drop (`0.2` = −20 %).
    pub max_tpt_drop: f64,
    /// Maximum tolerated fractional p99-latency rise (`0.5` = +50 %).
    pub max_p99_rise: f64,
}

impl Default for DiffThresholds {
    fn default() -> Self {
        Self {
            max_tpt_drop: 0.20,
            max_p99_rise: 0.50,
        }
    }
}

/// Verdict for one matched run pair.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Verdict {
    /// Within thresholds (or improved).
    Ok,
    /// Throughput dropped past the threshold.
    TptRegressed,
    /// p99 latency rose past the threshold.
    P99Regressed,
    /// Both limits blown.
    BothRegressed,
    /// The baseline carries no usable throughput for this key (zero,
    /// negative, or non-finite — e.g. a placeholder row committed before
    /// the configuration first produced numbers). There is nothing to
    /// regress against, so this never fails; it reports the configuration
    /// as effectively new.
    NewConfig,
}

impl Verdict {
    /// Does this verdict fail the diff?
    pub fn failed(self) -> bool {
        !matches!(self, Verdict::Ok | Verdict::NewConfig)
    }

    fn label(self) -> &'static str {
        match self {
            Verdict::Ok => "ok",
            Verdict::TptRegressed => "TPT REGRESSED",
            Verdict::P99Regressed => "P99 REGRESSED",
            Verdict::BothRegressed => "TPT+P99 REGRESSED",
            Verdict::NewConfig => "new config (no baseline)",
        }
    }
}

/// One matched configuration's before/after comparison.
#[derive(Clone, Debug)]
pub struct RunDiff {
    /// The shared configuration key ([`RunSnapshot::key`]).
    pub key: String,
    /// Old throughput (tuples/stream-ms).
    pub old_tpt: f64,
    /// New throughput (tuples/stream-ms).
    pub new_tpt: f64,
    /// Fractional throughput change (`+0.1` = 10 % faster).
    pub tpt_change: f64,
    /// Old p99 latency, when both snapshots carried one.
    pub old_p99: Option<f64>,
    /// New p99 latency, when both snapshots carried one.
    pub new_p99: Option<f64>,
    /// Fractional p99 change (`+0.1` = 10 % slower tail).
    pub p99_change: Option<f64>,
    /// Classification against the thresholds.
    pub verdict: Verdict,
}

/// Full comparison of two snapshots.
#[derive(Clone, Debug)]
pub struct DiffReport {
    /// Old snapshot's git SHA.
    pub old_sha: String,
    /// New snapshot's git SHA.
    pub new_sha: String,
    /// Matched configuration pairs, in the new snapshot's run order.
    pub rows: Vec<RunDiff>,
    /// Keys present only in the old snapshot (dropped configurations).
    pub only_old: Vec<String>,
    /// Keys present only in the new snapshot (new configurations).
    pub only_new: Vec<String>,
    /// Thresholds the verdicts were computed against.
    pub thresholds: DiffThresholds,
}

impl DiffReport {
    /// Did any matched pair regress past the thresholds?
    pub fn regressed(&self) -> bool {
        self.rows.iter().any(|r| r.verdict.failed())
    }

    /// Number of regressed pairs.
    pub fn regression_count(&self) -> usize {
        self.rows.iter().filter(|r| r.verdict.failed()).count()
    }

    /// Render the human-readable regression table.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "bench-diff: {} -> {}  (thresholds: tpt -{:.0}%, p99 +{:.0}%)\n",
            self.old_sha,
            self.new_sha,
            self.thresholds.max_tpt_drop * 100.0,
            self.thresholds.max_p99_rise * 100.0
        ));
        let key_w = self
            .rows
            .iter()
            .map(|r| r.key.len())
            .chain(std::iter::once("configuration".len()))
            .max()
            .unwrap_or(0);
        out.push_str(&format!(
            "{:<key_w$}  {:>12}  {:>12}  {:>8}  {:>8}  verdict\n",
            "configuration", "old tpt", "new tpt", "Δtpt", "Δp99"
        ));
        for r in &self.rows {
            let p99 = match r.p99_change {
                Some(c) => format!("{:+.1}%", c * 100.0),
                None => "-".into(),
            };
            out.push_str(&format!(
                "{:<key_w$}  {:>12.1}  {:>12.1}  {:>8}  {:>8}  {}\n",
                r.key,
                r.old_tpt,
                r.new_tpt,
                format!("{:+.1}%", r.tpt_change * 100.0),
                p99,
                r.verdict.label()
            ));
        }
        for k in &self.only_old {
            out.push_str(&format!("{k}: only in old snapshot (dropped)\n"));
        }
        for k in &self.only_new {
            out.push_str(&format!("{k}: only in new snapshot (added)\n"));
        }
        let n = self.regression_count();
        if n == 0 {
            out.push_str(&format!(
                "OK: {} configuration(s) within thresholds\n",
                self.rows.len()
            ));
        } else {
            out.push_str(&format!(
                "FAIL: {n} of {} configuration(s) regressed\n",
                self.rows.len()
            ));
        }
        out
    }
}

fn rel_change(old: f64, new: f64) -> f64 {
    if old == 0.0 {
        return 0.0;
    }
    (new - old) / old
}

fn classify(old: &RunSnapshot, new: &RunSnapshot, th: &DiffThresholds) -> RunDiff {
    // A baseline row without a positive finite throughput (zero, NaN, ∞)
    // has nothing to divide by: report "new config" rather than a NaN/∞
    // change or a spurious +0.0% ok.
    if !(old.throughput_tpms.is_finite() && old.throughput_tpms > 0.0) {
        return RunDiff {
            key: new.key(),
            old_tpt: old.throughput_tpms,
            new_tpt: new.throughput_tpms,
            tpt_change: 0.0,
            old_p99: old.latency_p99_ms,
            new_p99: new.latency_p99_ms,
            p99_change: None,
            verdict: Verdict::NewConfig,
        };
    }
    let tpt_change = rel_change(old.throughput_tpms, new.throughput_tpms);
    let (old_p99, new_p99, p99_change) = match (old.latency_p99_ms, new.latency_p99_ms) {
        (Some(o), Some(n)) => (Some(o), Some(n), Some(rel_change(o, n))),
        _ => (old.latency_p99_ms, new.latency_p99_ms, None),
    };
    let tpt_bad = tpt_change < -th.max_tpt_drop;
    let p99_bad = p99_change.is_some_and(|c| c > th.max_p99_rise);
    let verdict = match (tpt_bad, p99_bad) {
        (false, false) => Verdict::Ok,
        (true, false) => Verdict::TptRegressed,
        (false, true) => Verdict::P99Regressed,
        (true, true) => Verdict::BothRegressed,
    };
    RunDiff {
        key: new.key(),
        old_tpt: old.throughput_tpms,
        new_tpt: new.throughput_tpms,
        tpt_change,
        old_p99,
        new_p99,
        p99_change,
        verdict,
    }
}

/// Compare two snapshots run-by-run. Runs are matched by
/// [`RunSnapshot::key`]; unmatched runs land in `only_old` / `only_new`
/// and never fail the diff on their own.
pub fn diff(old: &BenchSnapshot, new: &BenchSnapshot, th: DiffThresholds) -> DiffReport {
    let mut rows = Vec::new();
    let mut only_new = Vec::new();
    let mut matched_old = vec![false; old.runs.len()];
    for n in &new.runs {
        let key = n.key();
        match old.runs.iter().position(|o| o.key() == key) {
            Some(i) => {
                matched_old[i] = true;
                rows.push(classify(&old.runs[i], n, &th));
            }
            None => only_new.push(key),
        }
    }
    let only_old = old
        .runs
        .iter()
        .zip(&matched_old)
        .filter(|(_, &m)| !m)
        .map(|(o, _)| o.key())
        .collect();
    DiffReport {
        old_sha: old.git_sha.clone(),
        new_sha: new.git_sha.clone(),
        rows,
        only_old,
        only_new,
        thresholds: th,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::perf::CounterDelta;
    use crate::snapshot::{PhaseSnapshot, SCHEMA_VERSION};

    fn run(engine: &str, tpt: f64, p99: Option<f64>) -> RunSnapshot {
        RunSnapshot {
            workload: "Rovio".into(),
            engine: engine.into(),
            threads: 4,
            scheduler: "static".into(),
            scatter: "direct".into(),
            npj_table: "latch".into(),
            kernel: "simd".into(),
            throughput_tpms: tpt,
            latency_p99_ms: p99,
            latency_max_ms: None,
            matches: 0,
            counter_source: "none".into(),
            phases: vec![PhaseSnapshot {
                label: "probe".into(),
                ns: 1,
                counters: CounterDelta::zero(),
            }],
            cachesim: None,
        }
    }

    fn snap(sha: &str, runs: Vec<RunSnapshot>) -> BenchSnapshot {
        BenchSnapshot {
            schema_version: SCHEMA_VERSION,
            fig: "fig7".into(),
            git_sha: sha.into(),
            created_unix_s: 0,
            scale: 0.01,
            speedup: 25.0,
            threads: 4,
            clock_ghz: 2.6,
            clock_source: "assumed".into(),
            runs,
        }
    }

    #[test]
    fn identical_snapshots_pass() {
        let s = snap("aaa", vec![run("NPJ", 1000.0, Some(2.0))]);
        let report = diff(&s, &s, DiffThresholds::default());
        assert!(!report.regressed());
        assert_eq!(report.rows.len(), 1);
        assert_eq!(report.rows[0].verdict, Verdict::Ok);
        assert!(report.render().contains("OK: 1 configuration"));
    }

    #[test]
    fn throughput_drop_past_threshold_fails() {
        let old = snap("aaa", vec![run("NPJ", 1000.0, Some(2.0))]);
        let new = snap("bbb", vec![run("NPJ", 750.0, Some(2.0))]);
        let report = diff(&old, &new, DiffThresholds::default());
        assert!(report.regressed());
        assert_eq!(report.rows[0].verdict, Verdict::TptRegressed);
        assert!(report.render().contains("TPT REGRESSED"));
        // A 19% drop stays under the default 20% threshold.
        let mild = snap("ccc", vec![run("NPJ", 810.0, Some(2.0))]);
        assert!(!diff(&old, &mild, DiffThresholds::default()).regressed());
    }

    #[test]
    fn p99_rise_past_threshold_fails() {
        let old = snap("aaa", vec![run("NPJ", 1000.0, Some(2.0))]);
        let new = snap("bbb", vec![run("NPJ", 1000.0, Some(3.5))]);
        let report = diff(&old, &new, DiffThresholds::default());
        assert!(report.regressed());
        assert_eq!(report.rows[0].verdict, Verdict::P99Regressed);
        // Missing p99 on either side cannot fail the latency check.
        let no_p99 = snap("ccc", vec![run("NPJ", 1000.0, None)]);
        assert!(!diff(&old, &no_p99, DiffThresholds::default()).regressed());
    }

    #[test]
    fn both_regressions_compose() {
        let old = snap("aaa", vec![run("NPJ", 1000.0, Some(2.0))]);
        let new = snap("bbb", vec![run("NPJ", 100.0, Some(20.0))]);
        let report = diff(&old, &new, DiffThresholds::default());
        assert_eq!(report.rows[0].verdict, Verdict::BothRegressed);
    }

    #[test]
    fn improvements_never_fail() {
        let old = snap("aaa", vec![run("NPJ", 1000.0, Some(2.0))]);
        let new = snap("bbb", vec![run("NPJ", 5000.0, Some(0.5))]);
        assert!(!diff(&old, &new, DiffThresholds::default()).regressed());
    }

    #[test]
    fn unmatched_runs_are_reported_not_failed() {
        let old = snap(
            "aaa",
            vec![run("NPJ", 1000.0, None), run("PRJ", 900.0, None)],
        );
        let new = snap(
            "bbb",
            vec![run("NPJ", 1000.0, None), run("MWAY", 800.0, None)],
        );
        let report = diff(&old, &new, DiffThresholds::default());
        assert!(!report.regressed());
        assert_eq!(
            report.only_old,
            vec!["Rovio|PRJ|t4|static|direct|latch|simd"]
        );
        assert_eq!(
            report.only_new,
            vec!["Rovio|MWAY|t4|static|direct|latch|simd"]
        );
        let rendered = report.render();
        assert!(rendered.contains("only in old snapshot"));
        assert!(rendered.contains("only in new snapshot"));
    }

    #[test]
    fn zero_or_unusable_baseline_reports_new_config_not_regression() {
        for bad_tpt in [0.0f64, -1.0, f64::NAN, f64::INFINITY] {
            let old = snap("aaa", vec![run("IBWJ", bad_tpt, None)]);
            let new = snap("bbb", vec![run("IBWJ", 1234.0, Some(2.0))]);
            let report = diff(&old, &new, DiffThresholds::default());
            assert!(
                !report.regressed(),
                "baseline tpt={bad_tpt} must not fail the diff"
            );
            assert_eq!(report.rows[0].verdict, Verdict::NewConfig);
            assert!(!report.rows[0].verdict.failed());
            assert!(
                report.rows[0].tpt_change.is_finite(),
                "no NaN/∞ change for tpt={bad_tpt}"
            );
            let rendered = report.render();
            assert!(rendered.contains("new config"), "{rendered}");
            assert!(rendered.contains("OK: 1 configuration"), "{rendered}");
        }
        // A zero baseline with a *worse* new value still cannot regress:
        // there was never a number to regress from.
        let old = snap("aaa", vec![run("IBWJ", 0.0, None)]);
        let new = snap("bbb", vec![run("IBWJ", 0.0, None)]);
        assert!(!diff(&old, &new, DiffThresholds::default()).regressed());
    }

    #[test]
    fn wider_thresholds_tolerate_more() {
        let old = snap("aaa", vec![run("NPJ", 1000.0, Some(2.0))]);
        let new = snap("bbb", vec![run("NPJ", 600.0, Some(3.5))]);
        assert!(diff(&old, &new, DiffThresholds::default()).regressed());
        let wide = DiffThresholds {
            max_tpt_drop: 0.5,
            max_p99_rise: 1.0,
        };
        assert!(!diff(&old, &new, wide).regressed());
    }
}
