//! Per-worker span journal.
//!
//! Each worker owns one [`SpanJournal`]: a preallocated ring buffer of
//! `(name, begin_ns, end_ns)` spans plus instant [`Mark`]s (barrier
//! releases, merge-pass boundaries, window flushes). All timestamps are
//! nanoseconds since a shared epoch `Instant` so the lanes of every worker
//! line up in one trace. A journal built with [`SpanJournal::disabled`]
//! allocates nothing and rejects records with a single branch, which is
//! what makes it safe to thread through the kernel hot paths
//! unconditionally.

use crate::perf::CounterDelta;
use std::time::Instant;

/// Journal mark recorded once per contended latch acquisition: the build
/// or probe path found a shared-table bucket latch held and had to
/// spin-wait before acquiring it (the §5.3.2 NPJ contention signal).
pub const MARK_LATCH_WAIT: &str = "latch:wait";

/// Journal mark recorded once per failed bucket-head CAS in the lock-free
/// shared table: another thread published an entry into the same bucket
/// between the head load and the compare-exchange.
pub const MARK_CAS_RETRY: &str = "cas:retry";

/// Journal mark recorded once per non-empty ingest batch drained from the
/// streaming operator's SPSC ingress queues.
pub const MARK_STREAM_INGEST: &str = "stream:ingest";

/// Journal mark recorded once per window closed by the streaming operator
/// (watermark passed the window end, engine run complete, state evicted).
pub const MARK_STREAM_CLOSE: &str = "stream:close";

/// Journal mark recorded once per late tuple dropped by the streaming
/// operator: the tuple's timestamp was already behind the watermark.
pub const MARK_STREAM_LATE: &str = "stream:late";

/// Journal mark recorded when the streaming operator observes that a
/// producer had to block on a full ingress queue since the last poll
/// (the backpressure signal; episodes are counted at the queue).
pub const MARK_STREAM_BACKPRESSURE: &str = "stream:backpressure";

/// Journal mark recorded once per generation dispatched through the
/// persistent executor's worker pool (job published, workers woken).
pub const MARK_EXEC_DISPATCH: &str = "exec:dispatch";

/// Journal mark recorded when a pool worker parks on the dispatch condvar
/// to wait for the next generation.
pub const MARK_EXEC_PARK: &str = "exec:park";

/// Journal mark recorded when worker pinning degraded: the placement plan
/// was empty (no topology / masked cpuset) or `sched_setaffinity` was
/// denied, so the worker runs wherever the OS puts it.
pub const MARK_EXEC_UNPINNED: &str = "exec:unpinned";

/// Journal mark recorded once per batch of arrivals inserted into a
/// resident window index by the IBWJ engine family.
pub const MARK_INDEX_INSERT: &str = "index:insert";

/// Journal mark recorded once per eviction sweep that unlinked expired
/// entries from a resident window index.
pub const MARK_INDEX_EVICT: &str = "index:evict";

/// Journal mark recorded once per histogram-triggered repartitioning of
/// the partitioned index engine (IBWJ_PART's adaptive rebalance).
pub const MARK_INDEX_REPART: &str = "index:repart";

/// One closed interval of work attributed to a named phase or activity.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Span {
    /// Static label, typically a `Phase::label()` like `"probe"`.
    pub name: &'static str,
    /// Nanoseconds since the journal epoch at which the span began.
    pub begin_ns: u64,
    /// Nanoseconds since the journal epoch at which the span ended.
    pub end_ns: u64,
    /// Hardware-counter deltas accumulated over the span, when the
    /// recording thread had a [`PerfSampler`](crate::perf::PerfSampler).
    pub counters: Option<CounterDelta>,
}

/// A point event: something that happened, with no duration.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Mark {
    /// Static label, e.g. `"barrier:build_done"` or `"merge-pass"`.
    pub name: &'static str,
    /// Nanoseconds since the journal epoch.
    pub at_ns: u64,
}

/// A bounded journal of [`Span`]s and [`Mark`]s for one worker.
///
/// When the ring is full the oldest entries are overwritten and counted in
/// [`SpanJournal::dropped`], so a runaway phase loop cannot grow memory.
#[derive(Clone, Debug)]
pub struct SpanJournal {
    epoch: Instant,
    spans: Vec<Span>,
    marks: Vec<Mark>,
    cap: usize,
    span_head: usize,
    mark_head: usize,
    dropped: u64,
}

impl SpanJournal {
    /// A journal with room for `cap` spans and `cap` marks, all timestamps
    /// relative to `epoch`. `cap == 0` yields a disabled journal.
    pub fn with_capacity(epoch: Instant, cap: usize) -> Self {
        Self {
            epoch,
            spans: Vec::with_capacity(cap),
            marks: Vec::with_capacity(cap),
            cap,
            span_head: 0,
            mark_head: 0,
            dropped: 0,
        }
    }

    /// A disabled journal: no allocation, every record is a no-op.
    pub fn disabled(epoch: Instant) -> Self {
        Self::with_capacity(epoch, 0)
    }

    /// Is this journal recording?
    #[inline]
    pub fn enabled(&self) -> bool {
        self.cap != 0
    }

    /// The shared time origin.
    #[inline]
    pub fn epoch(&self) -> Instant {
        self.epoch
    }

    /// Nanoseconds since the epoch (0 for instants predating it).
    #[inline]
    pub fn elapsed_ns(&self, at: Instant) -> u64 {
        at.saturating_duration_since(self.epoch).as_nanos() as u64
    }

    /// Record one span. No-op when disabled; overwrites the oldest entry
    /// when full.
    #[inline]
    pub fn record_span(&mut self, name: &'static str, begin: Instant, end: Instant) {
        self.record_span_with(name, begin, end, None);
    }

    /// Record one span with hardware-counter deltas attached. No-op when
    /// disabled; overwrites the oldest entry when full.
    #[inline]
    pub fn record_span_with(
        &mut self,
        name: &'static str,
        begin: Instant,
        end: Instant,
        counters: Option<CounterDelta>,
    ) {
        if self.cap == 0 {
            return;
        }
        let span = Span {
            name,
            begin_ns: self.elapsed_ns(begin),
            end_ns: self.elapsed_ns(end),
            counters,
        };
        if self.spans.len() < self.cap {
            self.spans.push(span);
        } else {
            self.spans[self.span_head] = span;
            self.span_head = (self.span_head + 1) % self.cap;
            self.dropped += 1;
        }
    }

    /// Record one instant mark. No-op when disabled; overwrites the oldest
    /// entry when full.
    #[inline]
    pub fn mark(&mut self, name: &'static str, at: Instant) {
        if self.cap == 0 {
            return;
        }
        let mark = Mark {
            name,
            at_ns: self.elapsed_ns(at),
        };
        if self.marks.len() < self.cap {
            self.marks.push(mark);
        } else {
            self.marks[self.mark_head] = mark;
            self.mark_head = (self.mark_head + 1) % self.cap;
            self.dropped += 1;
        }
    }

    /// Retained spans in chronological order.
    pub fn spans(&self) -> Vec<Span> {
        let mut out = Vec::with_capacity(self.spans.len());
        out.extend_from_slice(&self.spans[self.span_head..]);
        out.extend_from_slice(&self.spans[..self.span_head]);
        out
    }

    /// Retained marks in chronological order.
    pub fn marks(&self) -> Vec<Mark> {
        let mut out = Vec::with_capacity(self.marks.len());
        out.extend_from_slice(&self.marks[self.mark_head..]);
        out.extend_from_slice(&self.marks[..self.mark_head]);
        out
    }

    /// Number of retained spans.
    pub fn span_count(&self) -> usize {
        self.spans.len()
    }

    /// Number of retained marks.
    pub fn mark_count(&self) -> usize {
        self.marks.len()
    }

    /// Number of retained marks with the given name (e.g. scheduler
    /// `"morsel:steal"` events). Counts only what the ring retained;
    /// overwritten marks are gone.
    pub fn count_marks(&self, name: &str) -> usize {
        self.marks.iter().filter(|m| m.name == name).count()
    }

    /// Number of retained marks with the given name whose instant falls
    /// inside a retained span named `span_name` — i.e. events attributed
    /// to a phase. Half-open span intervals (`begin_ns <= at < end_ns`)
    /// keep a mark landing exactly on a phase switch out of both phases'
    /// columns rather than in both.
    pub fn count_marks_in(&self, name: &str, span_name: &str) -> usize {
        self.marks
            .iter()
            .filter(|m| m.name == name)
            .filter(|m| {
                self.spans
                    .iter()
                    .any(|s| s.name == span_name && s.begin_ns <= m.at_ns && m.at_ns < s.end_ns)
            })
            .count()
    }

    /// Entries overwritten because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    fn at(epoch: Instant, ns: u64) -> Instant {
        epoch + Duration::from_nanos(ns)
    }

    #[test]
    fn disabled_journal_allocates_nothing() {
        let mut j = SpanJournal::disabled(Instant::now());
        assert!(!j.enabled());
        let t = Instant::now();
        j.record_span("probe", t, t);
        j.mark("flush", t);
        assert_eq!(j.span_count(), 0);
        assert_eq!(j.mark_count(), 0);
        assert_eq!(j.spans.capacity(), 0);
        assert_eq!(j.marks.capacity(), 0);
        assert_eq!(j.dropped(), 0);
    }

    #[test]
    fn records_relative_to_epoch() {
        let epoch = Instant::now();
        let mut j = SpanJournal::with_capacity(epoch, 8);
        j.record_span("build/sort", at(epoch, 100), at(epoch, 250));
        j.mark("barrier:build_done", at(epoch, 250));
        let spans = j.spans();
        assert_eq!(
            spans,
            vec![Span {
                name: "build/sort",
                begin_ns: 100,
                end_ns: 250,
                counters: None
            }]
        );
        assert_eq!(
            j.marks(),
            vec![Mark {
                name: "barrier:build_done",
                at_ns: 250
            }]
        );
    }

    #[test]
    fn count_marks_filters_by_name() {
        let epoch = Instant::now();
        let mut j = SpanJournal::with_capacity(epoch, 8);
        j.mark("morsel:claim", at(epoch, 1));
        j.mark("morsel:steal", at(epoch, 2));
        j.mark("morsel:claim", at(epoch, 3));
        assert_eq!(j.count_marks("morsel:claim"), 2);
        assert_eq!(j.count_marks("morsel:steal"), 1);
        assert_eq!(j.count_marks("absent"), 0);
    }

    #[test]
    fn record_span_with_attaches_counters() {
        let epoch = Instant::now();
        let mut j = SpanJournal::with_capacity(epoch, 4);
        let mut c = CounterDelta::zero();
        c.vals[0] = 42;
        j.record_span_with("probe", at(epoch, 10), at(epoch, 20), Some(c));
        j.record_span("wait", at(epoch, 20), at(epoch, 30));
        let spans = j.spans();
        assert_eq!(spans[0].counters, Some(c));
        assert_eq!(spans[1].counters, None);
    }

    #[test]
    fn count_marks_in_attributes_marks_to_phases() {
        let epoch = Instant::now();
        let mut j = SpanJournal::with_capacity(epoch, 16);
        j.record_span("build/sort", at(epoch, 0), at(epoch, 100));
        j.record_span("probe", at(epoch, 100), at(epoch, 200));
        j.mark(MARK_LATCH_WAIT, at(epoch, 50)); // in build/sort
        j.mark(MARK_LATCH_WAIT, at(epoch, 150)); // in probe
        j.mark(MARK_LATCH_WAIT, at(epoch, 160)); // in probe
        j.mark(MARK_CAS_RETRY, at(epoch, 170)); // in probe, other name
        j.mark(MARK_LATCH_WAIT, at(epoch, 300)); // outside every span
        assert_eq!(j.count_marks_in(MARK_LATCH_WAIT, "build/sort"), 1);
        assert_eq!(j.count_marks_in(MARK_LATCH_WAIT, "probe"), 2);
        assert_eq!(j.count_marks_in(MARK_CAS_RETRY, "probe"), 1);
        assert_eq!(j.count_marks_in(MARK_LATCH_WAIT, "wait"), 0);
        // A mark exactly on the switch boundary belongs to the later span.
        j.mark(MARK_CAS_RETRY, at(epoch, 100));
        assert_eq!(j.count_marks_in(MARK_CAS_RETRY, "build/sort"), 0);
        assert_eq!(j.count_marks_in(MARK_CAS_RETRY, "probe"), 2);
    }

    #[test]
    fn pre_epoch_instants_clamp_to_zero() {
        let early = Instant::now();
        std::thread::sleep(Duration::from_millis(1));
        let epoch = Instant::now();
        let mut j = SpanJournal::with_capacity(epoch, 4);
        j.record_span("wait", early, at(epoch, 10));
        assert_eq!(j.spans()[0].begin_ns, 0);
        assert_eq!(j.spans()[0].end_ns, 10);
    }

    #[test]
    fn ring_overwrites_oldest_and_counts_drops() {
        let epoch = Instant::now();
        let mut j = SpanJournal::with_capacity(epoch, 3);
        for i in 0..5u64 {
            j.record_span("probe", at(epoch, i * 10), at(epoch, i * 10 + 5));
        }
        let spans = j.spans();
        assert_eq!(spans.len(), 3);
        // Oldest two (begin 0, 10) were overwritten; order stays chronological.
        assert_eq!(
            spans.iter().map(|s| s.begin_ns).collect::<Vec<_>>(),
            vec![20, 30, 40]
        );
        assert_eq!(j.dropped(), 2);
    }

    #[test]
    fn capacity_is_preallocated_once() {
        let epoch = Instant::now();
        let mut j = SpanJournal::with_capacity(epoch, 16);
        let cap_before = j.spans.capacity();
        for i in 0..64u64 {
            j.record_span("partition", at(epoch, i), at(epoch, i + 1));
            j.mark("pass", at(epoch, i));
        }
        assert_eq!(j.spans.capacity(), cap_before, "ring must not reallocate");
        assert_eq!(j.span_count(), 16);
        assert_eq!(j.mark_count(), 16);
    }
}
