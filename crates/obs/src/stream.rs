//! Periodic metrics for the continuous streaming join service.
//!
//! The streaming operator emits one [`StreamTick`] per reporting interval
//! (wall-clock, default one second): cumulative ingest/match/late/
//! backpressure counters, the current watermark, instantaneous queue depths
//! and resident pane count, and the ingest delta since the previous tick.
//! Ticks render either as a human-readable dashboard line ([`StreamTick::
//! to_text`]) or as one `{"type":"stream",...}` metrics-JSONL line
//! ([`StreamTick::to_jsonl`]) alongside the CLI's existing `summary` /
//! `clock` / `phase` line types.

use crate::json::write_f64;
use std::fmt::Write as _;

/// One periodic snapshot of a running streaming join.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct StreamTick {
    /// Wall-clock seconds since the operator started.
    pub wall_s: f64,
    /// Current watermark in stream milliseconds. `u64::MAX` encodes the
    /// end-of-stream watermark (both sources exhausted → +∞), rendered as
    /// `null` in JSONL.
    pub watermark_ms: u64,
    /// Cumulative tuples ingested across both sides (late drops included).
    pub ingested: u64,
    /// Tuples ingested since the previous tick.
    pub ingested_delta: u64,
    /// Cumulative matches across all closed windows.
    pub matches: u64,
    /// Cumulative windows closed.
    pub windows_closed: u64,
    /// Cumulative late tuples dropped.
    pub late: u64,
    /// Cumulative producer blocking episodes (backpressure) observed.
    pub backpressure_waits: u64,
    /// Current depth of the R-side ingress queue.
    pub queue_r: usize,
    /// Current depth of the S-side ingress queue.
    pub queue_s: usize,
    /// Panes (or pending session tuples' sessions) currently resident.
    pub resident_panes: usize,
}

impl StreamTick {
    /// Tuples per wall second since the previous tick, given the interval.
    pub fn rate_per_s(&self, interval_s: f64) -> f64 {
        if interval_s > 0.0 {
            self.ingested_delta as f64 / interval_s
        } else {
            0.0
        }
    }

    /// One metrics-JSONL line (no trailing newline).
    pub fn to_jsonl(&self) -> String {
        let mut out = String::from("{\"type\":\"stream\",\"wall_s\":");
        write_f64(&mut out, self.wall_s);
        out.push_str(",\"watermark_ms\":");
        if self.watermark_ms == u64::MAX {
            out.push_str("null");
        } else {
            let _ = write!(out, "{}", self.watermark_ms);
        }
        let _ = write!(
            out,
            ",\"ingested\":{},\"ingested_delta\":{},\"matches\":{},\
             \"windows_closed\":{},\"late\":{},\"backpressure_waits\":{},\
             \"queue_r\":{},\"queue_s\":{},\"resident_panes\":{}}}",
            self.ingested,
            self.ingested_delta,
            self.matches,
            self.windows_closed,
            self.late,
            self.backpressure_waits,
            self.queue_r,
            self.queue_s,
            self.resident_panes,
        );
        out
    }

    /// One human-readable dashboard line.
    pub fn to_text(&self) -> String {
        let wm = if self.watermark_ms == u64::MAX {
            "end".to_string()
        } else {
            format!("{}ms", self.watermark_ms)
        };
        format!(
            "[{:7.2}s] wm={:>8} in={:>9} (+{:>7}) matches={:>10} windows={:>5} \
             late={:>4} bp={:>4} q=({},{}) panes={}",
            self.wall_s,
            wm,
            self.ingested,
            self.ingested_delta,
            self.matches,
            self.windows_closed,
            self.late,
            self.backpressure_waits,
            self.queue_r,
            self.queue_s,
            self.resident_panes,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::Json;

    fn tick() -> StreamTick {
        StreamTick {
            wall_s: 1.5,
            watermark_ms: 1200,
            ingested: 3000,
            ingested_delta: 1000,
            matches: 450,
            windows_closed: 4,
            late: 2,
            backpressure_waits: 7,
            queue_r: 3,
            queue_s: 0,
            resident_panes: 5,
        }
    }

    #[test]
    fn jsonl_round_trips() {
        let t = tick();
        let v = Json::parse(&t.to_jsonl()).unwrap();
        assert_eq!(v.get("type").and_then(Json::as_str), Some("stream"));
        assert_eq!(v.get("watermark_ms").and_then(Json::as_u64), Some(1200));
        assert_eq!(v.get("ingested").and_then(Json::as_u64), Some(3000));
        assert_eq!(v.get("ingested_delta").and_then(Json::as_u64), Some(1000));
        assert_eq!(v.get("matches").and_then(Json::as_u64), Some(450));
        assert_eq!(v.get("windows_closed").and_then(Json::as_u64), Some(4));
        assert_eq!(v.get("late").and_then(Json::as_u64), Some(2));
        assert_eq!(v.get("backpressure_waits").and_then(Json::as_u64), Some(7));
        assert_eq!(v.get("queue_r").and_then(Json::as_u64), Some(3));
        assert_eq!(v.get("resident_panes").and_then(Json::as_u64), Some(5));
    }

    #[test]
    fn end_of_stream_watermark_is_null() {
        let t = StreamTick {
            watermark_ms: u64::MAX,
            ..tick()
        };
        let v = Json::parse(&t.to_jsonl()).unwrap();
        assert_eq!(v.get("watermark_ms"), Some(&Json::Null));
        assert!(t.to_text().contains("wm=     end"));
    }

    #[test]
    fn rate_uses_delta() {
        assert_eq!(tick().rate_per_s(0.5), 2000.0);
        assert_eq!(tick().rate_per_s(0.0), 0.0);
    }
}
