//! Hardware performance counters via Linux `perf_event_open`.
//!
//! The paper's §6.2 microarchitectural analysis (Table 5, Fig. 19)
//! attributes engine behavior to cycles, instructions, cache/TLB misses
//! and branch mispredicts measured with PCM. This module provides the
//! same counters for our phase timers — *measured*, not simulated —
//! without adding a dependency: the one syscall the kernel needs
//! (`perf_event_open`) is issued through inline assembly, and the
//! returned descriptors are wrapped in `std::fs::File` so reads and
//! closes go through std.
//!
//! Design constraints, in order:
//!
//! 1. **Never panic, never fail a run.** Counter availability is a host
//!    property (`perf_event_paranoid`, seccomp filters, missing PMUs in
//!    VMs, non-Linux targets). [`PerfSampler::open`] returns a
//!    [`PerfError`] and callers degrade to simulated-only columns.
//! 2. **Per-thread attribution.** A sampler opened on a worker thread
//!    (pid = 0, cpu = −1) follows exactly that thread, so per-phase
//!    deltas line up with the per-thread [`SpanJournal`] spans.
//! 3. **Honest multiplexing.** Each event is opened ungrouped with
//!    `PERF_FORMAT_TOTAL_TIME_ENABLED|RUNNING`; when the PMU rotates
//!    events, deltas are scaled by the enabled/running ratio of the
//!    interval, the same estimate `perf stat` reports.
//!
//! Events are counted in user space only (`exclude_kernel`,
//! `exclude_hv`), which keeps them usable at `perf_event_paranoid = 2`,
//! the default on most distributions.
//!
//! [`SpanJournal`]: crate::journal::SpanJournal

use std::fmt;
use std::fs::File;
use std::io::Read;
use std::ops::{Add, AddAssign};

/// Number of hardware counters a sampler tracks.
pub const N_COUNTERS: usize = 8;

/// Counter names, in [`CounterDelta::vals`] order.
pub const COUNTER_NAMES: [&str; N_COUNTERS] = [
    "cycles",
    "instructions",
    "l1d_loads",
    "l1d_misses",
    "llc_loads",
    "llc_misses",
    "dtlb_misses",
    "branch_misses",
];

/// Index of the cycle counter in [`CounterDelta::vals`].
pub const IDX_CYCLES: usize = 0;
/// Index of the retired-instruction counter.
pub const IDX_INSTRUCTIONS: usize = 1;
/// Index of the L1D load counter.
pub const IDX_L1D_LOADS: usize = 2;
/// Index of the L1D load-miss counter.
pub const IDX_L1D_MISSES: usize = 3;
/// Index of the last-level-cache load counter.
pub const IDX_LLC_LOADS: usize = 4;
/// Index of the last-level-cache load-miss counter.
pub const IDX_LLC_MISSES: usize = 5;
/// Index of the dTLB load-miss counter.
pub const IDX_DTLB_MISSES: usize = 6;
/// Index of the branch-mispredict counter.
pub const IDX_BRANCH_MISSES: usize = 7;

/// A bundle of counter increments over one interval (or a sum of
/// intervals). Addable across phases, workers and runs.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CounterDelta {
    /// One value per [`COUNTER_NAMES`] entry.
    pub vals: [u64; N_COUNTERS],
}

impl CounterDelta {
    /// The all-zero delta.
    pub const fn zero() -> Self {
        CounterDelta {
            vals: [0; N_COUNTERS],
        }
    }

    /// True when every counter is zero (no hardware data).
    pub fn is_zero(&self) -> bool {
        self.vals.iter().all(|&v| v == 0)
    }

    /// CPU cycles in this interval.
    pub fn cycles(&self) -> u64 {
        self.vals[IDX_CYCLES]
    }

    /// Retired instructions in this interval.
    pub fn instructions(&self) -> u64 {
        self.vals[IDX_INSTRUCTIONS]
    }

    /// Instructions per cycle; `None` when cycles are zero.
    pub fn ipc(&self) -> Option<f64> {
        let c = self.cycles();
        (c > 0).then(|| self.instructions() as f64 / c as f64)
    }

    /// `vals[idx]` per thousand instructions; `None` without instructions.
    pub fn per_kilo_instruction(&self, idx: usize) -> Option<f64> {
        let i = self.instructions();
        (i > 0).then(|| self.vals[idx] as f64 * 1000.0 / i as f64)
    }
}

impl AddAssign for CounterDelta {
    fn add_assign(&mut self, rhs: CounterDelta) {
        for (a, b) in self.vals.iter_mut().zip(rhs.vals.iter()) {
            *a = a.saturating_add(*b);
        }
    }
}

impl Add for CounterDelta {
    type Output = CounterDelta;
    fn add(mut self, rhs: CounterDelta) -> CounterDelta {
        self += rhs;
        self
    }
}

/// Where a run's per-phase counters came from.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum CounterSource {
    /// Measured by `perf_event_open` hardware counters.
    Perf,
    /// No hardware counters (permission denied, no PMU, non-Linux);
    /// only the cache simulator's modeled counters are available.
    #[default]
    Unavailable,
}

impl CounterSource {
    /// Machine-readable label (`"perf"` / `"none"`).
    pub fn label(self) -> &'static str {
        match self {
            CounterSource::Perf => "perf",
            CounterSource::Unavailable => "none",
        }
    }

    /// Did hardware counters back this data?
    pub fn is_perf(self) -> bool {
        self == CounterSource::Perf
    }
}

/// Why hardware counters could not be opened.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PerfError {
    /// Not a Linux target (or an architecture without the syscall shim).
    Unsupported,
    /// `perf_event_open` failed with this errno for every core event.
    Errno(i32),
}

impl fmt::Display for PerfError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            PerfError::Unsupported => write!(f, "perf_event_open unavailable on this target"),
            PerfError::Errno(e) if e == 1 || e == 13 => write!(
                f,
                "perf_event_open denied (errno {e}); check \
                 /proc/sys/kernel/perf_event_paranoid or container seccomp policy"
            ),
            PerfError::Errno(e) => write!(f, "perf_event_open failed (errno {e})"),
        }
    }
}

// ---------------------------------------------------------------------------
// The syscall shim
// ---------------------------------------------------------------------------

/// `struct perf_event_attr`, `PERF_ATTR_SIZE_VER7` (128-byte) layout.
/// All-zero is a valid counting-event configuration; only the handful of
/// fields we set are named in `attr()` below.
#[repr(C)]
#[derive(Clone, Copy)]
struct PerfEventAttr {
    type_: u32,
    size: u32,
    config: u64,
    sample_period_or_freq: u64,
    sample_type: u64,
    read_format: u64,
    flags: u64,
    wakeup: u32,
    bp_type: u32,
    config1: u64,
    config2: u64,
    branch_sample_type: u64,
    sample_regs_user: u64,
    sample_stack_user: u32,
    clockid: i32,
    sample_regs_intr: u64,
    aux_watermark: u32,
    sample_max_stack: u16,
    reserved_2: u16,
    aux_sample_size: u32,
    reserved_3: u32,
    sig_data: u64,
}

const PERF_ATTR_SIZE: u32 = 128;
/// `read_format`: value + time_enabled + time_running.
const FORMAT_TOTAL_TIMES: u64 = 1 | 2;
/// `flags` bitfield: exclude_kernel (bit 5) | exclude_hv (bit 6) — user
/// space only, so `perf_event_paranoid = 2` still admits us.
const FLAG_EXCLUDE_KERNEL_HV: u64 = (1 << 5) | (1 << 6);
/// `perf_event_open` flags argument: close-on-exec.
const PERF_FLAG_FD_CLOEXEC: u64 = 8;

const PERF_TYPE_HARDWARE: u32 = 0;
const PERF_TYPE_HW_CACHE: u32 = 3;

const HW_CPU_CYCLES: u64 = 0;
const HW_INSTRUCTIONS: u64 = 1;
const HW_BRANCH_MISSES: u64 = 5;

/// `PERF_COUNT_HW_CACHE_*` config: `id | (op << 8) | (result << 16)`.
const fn hw_cache(id: u64, op: u64, result: u64) -> u64 {
    id | (op << 8) | (result << 16)
}
const CACHE_L1D: u64 = 0;
const CACHE_LL: u64 = 2;
const CACHE_DTLB: u64 = 3;
const OP_READ: u64 = 0;
const RESULT_ACCESS: u64 = 0;
const RESULT_MISS: u64 = 1;

/// `(type, config)` for each [`COUNTER_NAMES`] slot.
const EVENT_CONFIGS: [(u32, u64); N_COUNTERS] = [
    (PERF_TYPE_HARDWARE, HW_CPU_CYCLES),
    (PERF_TYPE_HARDWARE, HW_INSTRUCTIONS),
    (
        PERF_TYPE_HW_CACHE,
        hw_cache(CACHE_L1D, OP_READ, RESULT_ACCESS),
    ),
    (
        PERF_TYPE_HW_CACHE,
        hw_cache(CACHE_L1D, OP_READ, RESULT_MISS),
    ),
    (
        PERF_TYPE_HW_CACHE,
        hw_cache(CACHE_LL, OP_READ, RESULT_ACCESS),
    ),
    (PERF_TYPE_HW_CACHE, hw_cache(CACHE_LL, OP_READ, RESULT_MISS)),
    (
        PERF_TYPE_HW_CACHE,
        hw_cache(CACHE_DTLB, OP_READ, RESULT_MISS),
    ),
    (PERF_TYPE_HARDWARE, HW_BRANCH_MISSES),
];

fn attr(type_: u32, config: u64) -> PerfEventAttr {
    // SAFETY: PerfEventAttr is plain-old-data; all-zero is the kernel's
    // documented default configuration.
    let mut a: PerfEventAttr = unsafe { std::mem::zeroed() };
    a.type_ = type_;
    a.size = PERF_ATTR_SIZE;
    a.config = config;
    a.read_format = FORMAT_TOTAL_TIMES;
    a.flags = FLAG_EXCLUDE_KERNEL_HV;
    a
}

/// Raw `perf_event_open(attr, pid = 0, cpu = -1, group_fd = -1, CLOEXEC)`
/// for the calling thread. Returns the fd, or a negative errno.
#[cfg(all(target_os = "linux", target_arch = "x86_64"))]
fn sys_perf_event_open(a: &PerfEventAttr) -> i64 {
    let ret: i64;
    // SAFETY: the syscall reads `a` (live for the call) and touches no
    // other memory; rcx/r11 are declared clobbered per the x86_64 ABI.
    unsafe {
        std::arch::asm!(
            "syscall",
            inlateout("rax") 298i64 => ret, // __NR_perf_event_open
            in("rdi") a as *const PerfEventAttr,
            in("rsi") 0i64,  // pid: calling thread
            in("rdx") -1i64, // cpu: any
            in("r10") -1i64, // group_fd: ungrouped
            in("r8") PERF_FLAG_FD_CLOEXEC,
            out("rcx") _,
            out("r11") _,
            options(nostack),
        );
    }
    ret
}

#[cfg(all(target_os = "linux", target_arch = "aarch64"))]
fn sys_perf_event_open(a: &PerfEventAttr) -> i64 {
    let ret: i64;
    // SAFETY: as above; aarch64 passes the number in x8, args in x0..x4.
    unsafe {
        std::arch::asm!(
            "svc 0",
            inlateout("x0") a as *const PerfEventAttr as i64 => ret,
            in("x1") 0i64,
            in("x2") -1i64,
            in("x3") -1i64,
            in("x4") PERF_FLAG_FD_CLOEXEC,
            in("x8") 241i64, // __NR_perf_event_open
            options(nostack),
        );
    }
    ret
}

#[cfg(not(all(
    target_os = "linux",
    any(target_arch = "x86_64", target_arch = "aarch64")
)))]
fn sys_perf_event_open(_a: &PerfEventAttr) -> i64 {
    -38 // -ENOSYS
}

// ---------------------------------------------------------------------------
// The sampler
// ---------------------------------------------------------------------------

/// One open counting event and its last-read cumulative state.
#[derive(Debug)]
struct EventState {
    file: File,
    value: u64,
    enabled: u64,
    running: u64,
}

impl EventState {
    /// Read `(value, time_enabled, time_running)` from the event fd.
    fn read_triple(&self) -> Option<[u64; 3]> {
        let mut buf = [0u8; 24];
        let mut f = &self.file;
        let n = f.read(&mut buf).ok()?;
        if n < 24 {
            return None;
        }
        let word = |i: usize| u64::from_ne_bytes(buf[i * 8..i * 8 + 8].try_into().unwrap());
        Some([word(0), word(1), word(2)])
    }
}

/// A per-thread set of hardware counters. Open it on the thread you want
/// measured; [`PerfSampler::sample`] returns the (multiplexing-scaled)
/// increments since the previous call.
#[derive(Debug)]
pub struct PerfSampler {
    events: [Option<EventState>; N_COUNTERS],
}

impl PerfSampler {
    /// Open the counter set for the calling thread. Individual events may
    /// be missing (no dTLB event on this PMU, say) and simply read as
    /// zero; the open only fails when *both* core events — cycles and
    /// instructions — are rejected, in which case the host does not
    /// meaningfully support `perf_event` and callers should fall back to
    /// simulated counters.
    pub fn open() -> Result<PerfSampler, PerfError> {
        let mut events: [Option<EventState>; N_COUNTERS] = Default::default();
        let mut last_err = PerfError::Unsupported;
        for (i, &(type_, config)) in EVENT_CONFIGS.iter().enumerate() {
            let a = attr(type_, config);
            let ret = sys_perf_event_open(&a);
            if ret >= 0 {
                // SAFETY: ret is a fresh fd we own; File takes over closing.
                let file = unsafe {
                    use std::os::fd::FromRawFd;
                    File::from_raw_fd(ret as std::os::fd::RawFd)
                };
                let mut ev = EventState {
                    file,
                    value: 0,
                    enabled: 0,
                    running: 0,
                };
                if let Some([v, e, r]) = ev.read_triple() {
                    (ev.value, ev.enabled, ev.running) = (v, e, r);
                    events[i] = Some(ev);
                }
            } else {
                last_err = PerfError::Errno((-ret) as i32);
            }
        }
        if events[IDX_CYCLES].is_none() && events[IDX_INSTRUCTIONS].is_none() {
            return Err(last_err);
        }
        Ok(PerfSampler { events })
    }

    /// Which counters actually opened.
    pub fn available(&self) -> [bool; N_COUNTERS] {
        std::array::from_fn(|i| self.events[i].is_some())
    }

    /// Counter increments since the last `sample` (or since `open`).
    /// Events the PMU multiplexed out for part of the interval are scaled
    /// by `enabled/running`, like `perf stat`; events that never ran
    /// contribute zero.
    pub fn sample(&mut self) -> CounterDelta {
        let mut out = CounterDelta::zero();
        for (i, slot) in self.events.iter_mut().enumerate() {
            let Some(ev) = slot else { continue };
            let Some([v, e, r]) = ev.read_triple() else {
                continue;
            };
            let dv = v.saturating_sub(ev.value);
            let de = e.saturating_sub(ev.enabled);
            let dr = r.saturating_sub(ev.running);
            (ev.value, ev.enabled, ev.running) = (v, e, r);
            out.vals[i] = if dr == 0 {
                0
            } else if de == dr {
                dv
            } else {
                ((dv as u128).saturating_mul(de as u128) / dr as u128) as u64
            };
        }
        out
    }
}

/// Measure the calling thread's effective clock in GHz (cycles per
/// nanosecond) by spinning for at least `min_ms` milliseconds against the
/// cycle counter. `None` when hardware counters are unavailable or the
/// cycle event never ran.
pub fn measure_ghz(min_ms: u64) -> Option<f64> {
    let mut sampler = PerfSampler::open().ok()?;
    sampler.available()[IDX_CYCLES].then_some(())?;
    let start = std::time::Instant::now();
    sampler.sample();
    let mut acc = 0u64;
    while start.elapsed().as_millis() < u128::from(min_ms.max(1)) {
        // Dependent adds: one cycle each, keeps the core busy without
        // touching memory.
        for _ in 0..4096 {
            acc = std::hint::black_box(acc.wrapping_add(1));
        }
    }
    let ns = start.elapsed().as_nanos() as u64;
    let cycles = sampler.sample().cycles();
    (cycles > 0 && ns > 0).then(|| cycles as f64 / ns as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delta_arithmetic_accumulates() {
        let mut a = CounterDelta::zero();
        assert!(a.is_zero());
        let mut b = CounterDelta::zero();
        b.vals[IDX_CYCLES] = 100;
        b.vals[IDX_INSTRUCTIONS] = 250;
        b.vals[IDX_L1D_MISSES] = 5;
        a += b;
        a += b;
        assert_eq!(a.cycles(), 200);
        assert_eq!(a.instructions(), 500);
        assert!((a.ipc().unwrap() - 2.5).abs() < 1e-12);
        assert!((a.per_kilo_instruction(IDX_L1D_MISSES).unwrap() - 20.0).abs() < 1e-9);
        let c = a + b;
        assert_eq!(c.cycles(), 300);
    }

    #[test]
    fn zero_delta_has_no_rates() {
        let z = CounterDelta::zero();
        assert_eq!(z.ipc(), None);
        assert_eq!(z.per_kilo_instruction(IDX_LLC_MISSES), None);
    }

    #[test]
    fn saturating_add_does_not_wrap() {
        let mut a = CounterDelta::zero();
        a.vals[0] = u64::MAX - 1;
        let mut b = CounterDelta::zero();
        b.vals[0] = 5;
        a += b;
        assert_eq!(a.vals[0], u64::MAX);
    }

    #[test]
    fn counter_source_labels() {
        assert_eq!(CounterSource::Perf.label(), "perf");
        assert_eq!(CounterSource::Unavailable.label(), "none");
        assert!(CounterSource::Perf.is_perf());
        assert!(!CounterSource::default().is_perf());
    }

    #[test]
    fn perf_error_display_hints_at_paranoid() {
        let msg = PerfError::Errno(13).to_string();
        assert!(msg.contains("perf_event_paranoid"), "{msg}");
        let msg = PerfError::Errno(22).to_string();
        assert!(msg.contains("errno 22"), "{msg}");
        assert!(PerfError::Unsupported.to_string().contains("unavailable"));
    }

    /// The graceful-degradation contract: open either succeeds and then
    /// measures real work, or fails with a classified error — it never
    /// panics. Both branches are legitimate depending on the host
    /// (paranoid level, seccomp, VM without a PMU).
    #[test]
    fn open_measures_or_degrades() {
        match PerfSampler::open() {
            Ok(mut s) => {
                s.sample();
                let mut acc = 0u64;
                for _ in 0..2_000_000 {
                    acc = std::hint::black_box(acc.wrapping_add(3));
                }
                let d = s.sample();
                // Cycles (or at least one core counter) must have moved
                // for two million dependent adds.
                assert!(
                    d.cycles() > 0 || d.instructions() > 0,
                    "counters opened but never counted: {d:?}"
                );
            }
            Err(e) => {
                // Degraded hosts: the error formats and carries a reason.
                assert!(!e.to_string().is_empty());
            }
        }
    }

    #[test]
    fn measure_ghz_is_plausible_or_none() {
        match measure_ghz(2) {
            Some(ghz) => assert!(
                (0.1..20.0).contains(&ghz),
                "implausible clock estimate: {ghz} GHz"
            ),
            None => {} // no counters on this host — the degraded path
        }
    }
}
