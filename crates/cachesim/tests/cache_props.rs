//! Property-based tests of the cache simulator: conservation, LRU
//! behaviour, and hierarchy consistency under arbitrary access traces.

use iawj_cachesim::cache::{CacheConfig, CacheLevel};
use iawj_cachesim::hierarchy::Hierarchy;
use proptest::prelude::*;

proptest! {
    #[test]
    fn hits_plus_misses_equals_accesses(addrs in proptest::collection::vec(0u64..1u64 << 20, 1..2000)) {
        let mut c = CacheLevel::new(CacheConfig { size_bytes: 4096, line_bytes: 64, ways: 4 });
        for &a in &addrs {
            c.access(a);
        }
        prop_assert_eq!(c.hits() + c.misses(), addrs.len() as u64);
    }

    #[test]
    fn immediate_repeat_always_hits(addrs in proptest::collection::vec(0u64..1u64 << 24, 1..500)) {
        let mut c = CacheLevel::new(CacheConfig { size_bytes: 2048, line_bytes: 64, ways: 2 });
        for &a in &addrs {
            c.access(a);
            prop_assert!(c.access(a), "address {a:#x} missed immediately after fill");
        }
    }

    #[test]
    fn small_working_set_converges_to_all_hits(
        lines in proptest::collection::vec(0u64..8, 1..200)) {
        // 8 distinct lines, cache holds 64: after one pass, no more misses.
        let mut c = CacheLevel::new(CacheConfig { size_bytes: 4096, line_bytes: 64, ways: 4 });
        for &l in &lines {
            c.access(l * 64);
        }
        c.reset_counters();
        for &l in &lines {
            c.access(l * 64);
        }
        prop_assert_eq!(c.misses(), 0);
    }

    #[test]
    fn hierarchy_counters_are_monotone_filters(addrs in proptest::collection::vec(0u64..1u64 << 26, 1..2000)) {
        let mut h = Hierarchy::new(1);
        for &a in &addrs {
            h.cores[0].access_line(a);
        }
        let c = h.total();
        prop_assert_eq!(c.accesses, addrs.len() as u64);
        // Misses can only shrink with depth: L1 >= L2 >= L3.
        prop_assert!(c.l1d_misses >= c.l2_misses);
        prop_assert!(c.l2_misses >= c.l3_misses);
        prop_assert!(c.dtlb_misses <= c.accesses);
    }

    #[test]
    fn flush_restores_cold_state(addrs in proptest::collection::vec(0u64..1u64 << 16, 1..200)) {
        let mut c = CacheLevel::new(CacheConfig { size_bytes: 65536, line_bytes: 64, ways: 8 });
        let mut distinct: Vec<u64> = addrs.iter().map(|a| a >> 6).collect();
        distinct.sort_unstable();
        distinct.dedup();
        for &a in &addrs {
            c.access(a);
        }
        c.flush();
        for &a in &addrs {
            c.access(a);
        }
        // After a flush, exactly one cold miss per distinct line (the
        // working set fits: 1024-line capacity vs <=200 lines).
        prop_assert_eq!(c.misses(), distinct.len() as u64);
    }
}
