//! A single set-associative cache level with true-LRU replacement.

/// Geometry of one cache level.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub size_bytes: usize,
    /// Line (block) size in bytes; 64 on every x86 of interest.
    pub line_bytes: usize,
    /// Associativity (ways per set).
    pub ways: usize,
}

impl CacheConfig {
    /// Number of sets implied by the geometry.
    ///
    /// # Panics
    /// Panics unless `line_bytes` and the resulting set count are powers of
    /// two and the capacity divides evenly — the same constraints real
    /// hardware has.
    pub fn sets(&self) -> usize {
        assert!(
            self.line_bytes.is_power_of_two(),
            "line size must be a power of two"
        );
        assert!(self.ways > 0, "associativity must be positive");
        let lines = self.size_bytes / self.line_bytes;
        assert_eq!(
            lines * self.line_bytes,
            self.size_bytes,
            "capacity must be a whole number of lines"
        );
        let sets = lines / self.ways;
        assert!(
            sets > 0 && sets.is_power_of_two(),
            "set count must be a power of two, got {sets}"
        );
        sets
    }

    /// 32 KiB / 8-way L1D of the Xeon Gold 6126.
    pub const fn l1d_gold6126() -> Self {
        CacheConfig {
            size_bytes: 32 * 1024,
            line_bytes: 64,
            ways: 8,
        }
    }

    /// 1 MiB / 16-way per-core L2 of the Xeon Gold 6126.
    pub const fn l2_gold6126() -> Self {
        CacheConfig {
            size_bytes: 1024 * 1024,
            line_bytes: 64,
            ways: 16,
        }
    }

    /// Shared L3 of the Xeon Gold 6126. The real part has 19.25 MiB / 11-way;
    /// we round to 16 MiB / 16-way to keep the set count a power of two —
    /// within 20% of the real capacity, which is well inside the noise the
    /// study's qualitative conclusions tolerate.
    pub const fn l3_gold6126() -> Self {
        CacheConfig {
            size_bytes: 16 * 1024 * 1024,
            line_bytes: 64,
            ways: 16,
        }
    }

    /// 64-entry, 4-way data TLB over 4 KiB pages, modelled as a cache whose
    /// "lines" are pages.
    pub const fn dtlb() -> Self {
        CacheConfig {
            size_bytes: 64 * 4096,
            line_bytes: 4096,
            ways: 4,
        }
    }
}

/// One set-associative cache level. Tags are stored per set in LRU order
/// (index 0 = most recently used), which for ≤16 ways is faster and simpler
/// than counter-based pseudo-LRU.
#[derive(Clone, Debug)]
pub struct CacheLevel {
    cfg: CacheConfig,
    set_mask: u64,
    line_shift: u32,
    /// `sets × ways` tag array; `u64::MAX` marks an invalid way.
    tags: Vec<u64>,
    hits: u64,
    misses: u64,
}

impl CacheLevel {
    /// Build an empty (all-invalid) cache of the given geometry.
    pub fn new(cfg: CacheConfig) -> Self {
        let sets = cfg.sets();
        CacheLevel {
            cfg,
            set_mask: sets as u64 - 1,
            line_shift: cfg.line_bytes.trailing_zeros(),
            tags: vec![u64::MAX; sets * cfg.ways],
            hits: 0,
            misses: 0,
        }
    }

    /// The geometry this level was built with.
    pub fn config(&self) -> CacheConfig {
        self.cfg
    }

    /// Access one *line address* (byte address is fine too — low bits are
    /// shifted off). Returns `true` on hit. On miss the line is filled,
    /// evicting the LRU way.
    #[inline]
    pub fn access(&mut self, addr: u64) -> bool {
        let line = addr >> self.line_shift;
        let set = (line & self.set_mask) as usize;
        let ways = self.cfg.ways;
        let base = set * ways;
        let set_tags = &mut self.tags[base..base + ways];
        // Search for the tag; on hit rotate it to MRU position.
        if let Some(pos) = set_tags.iter().position(|&t| t == line) {
            set_tags[..=pos].rotate_right(1);
            self.hits += 1;
            true
        } else {
            set_tags.rotate_right(1);
            set_tags[0] = line;
            self.misses += 1;
            false
        }
    }

    /// Hits so far.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Misses so far.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Reset counters (contents are kept — the warm cache stays warm).
    pub fn reset_counters(&mut self) {
        self.hits = 0;
        self.misses = 0;
    }

    /// Invalidate all contents and reset counters.
    pub fn flush(&mut self) {
        self.tags.fill(u64::MAX);
        self.reset_counters();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> CacheLevel {
        // 4 sets × 2 ways × 64-byte lines = 512 bytes.
        CacheLevel::new(CacheConfig {
            size_bytes: 512,
            line_bytes: 64,
            ways: 2,
        })
    }

    #[test]
    fn geometry() {
        assert_eq!(CacheConfig::l1d_gold6126().sets(), 64);
        assert_eq!(CacheConfig::l2_gold6126().sets(), 1024);
        assert_eq!(CacheConfig::dtlb().sets(), 16);
    }

    #[test]
    fn cold_miss_then_hit() {
        let mut c = tiny();
        assert!(!c.access(0));
        assert!(c.access(0));
        assert!(c.access(63)); // same line
        assert!(!c.access(64)); // next line
        assert_eq!(c.hits(), 2);
        assert_eq!(c.misses(), 2);
    }

    #[test]
    fn lru_eviction_within_set() {
        let mut c = tiny();
        // Three lines mapping to set 0 in a 2-way set: 0, 4*64, 8*64.
        let (a, b, d) = (0u64, 4 * 64, 8 * 64);
        c.access(a);
        c.access(b);
        c.access(d); // evicts a (LRU)
        assert!(!c.access(a), "a must have been evicted");
        // That access evicted b (now LRU after d, a ordering).
        assert!(c.access(d));
    }

    #[test]
    fn lru_refresh_on_hit() {
        let mut c = tiny();
        let (a, b, d) = (0u64, 4 * 64, 8 * 64);
        c.access(a);
        c.access(b);
        c.access(a); // refresh a to MRU
        c.access(d); // must evict b, not a
        assert!(c.access(a), "a was refreshed and must survive");
    }

    #[test]
    fn working_set_within_capacity_never_misses_after_warmup() {
        let cfg = CacheConfig {
            size_bytes: 4096,
            line_bytes: 64,
            ways: 4,
        };
        let mut c = CacheLevel::new(cfg);
        let lines: Vec<u64> = (0..64).map(|i| i * 64).collect();
        for &l in &lines {
            c.access(l);
        }
        c.reset_counters();
        for _ in 0..10 {
            for &l in &lines {
                c.access(l);
            }
        }
        assert_eq!(c.misses(), 0);
        assert_eq!(c.hits(), 640);
    }

    #[test]
    fn streaming_over_capacity_always_misses() {
        let cfg = CacheConfig {
            size_bytes: 4096,
            line_bytes: 64,
            ways: 4,
        };
        let mut c = CacheLevel::new(cfg);
        // 128 lines > 64-line capacity, round-robin: pure capacity misses.
        for round in 0..4 {
            for i in 0..128u64 {
                let hit = c.access(i * 64);
                if round > 0 {
                    assert!(!hit, "line {i} hit despite thrashing");
                }
            }
        }
    }

    #[test]
    fn flush_invalidates() {
        let mut c = tiny();
        c.access(0);
        c.flush();
        assert!(!c.access(0));
        assert_eq!(c.misses(), 1);
    }
}
