//! A first-order cycle cost model over simulated cache counters.
//!
//! Figure 19a of the paper presents a top-down breakdown (retiring /
//! bad speculation / frontend bound / core bound / memory bound, per Yasin's
//! method) computed from hardware PMU events. We approximate it with the
//! classic average-memory-access-time decomposition: every access retires
//! base work, and each miss level adds a stall penalty attributed to
//! "memory bound"; per-tuple dispatch overhead (the eager algorithms'
//! frequent function calls, §5.6) is attributed to "core bound". The
//! penalties below are the published load-to-use latencies of the Skylake-SP
//! generation the paper evaluates on.

use crate::hierarchy::Counters;

/// Stall penalties and issue costs, in cycles.
#[derive(Clone, Copy, Debug)]
pub struct CostModel {
    /// Cycles of useful (retiring) work per data access.
    pub base_per_access: f64,
    /// Added stall when an access misses L1 and hits L2.
    pub l2_hit_penalty: f64,
    /// Added stall when an access misses L2 and hits L3.
    pub l3_hit_penalty: f64,
    /// Added stall when an access goes to DRAM.
    pub dram_penalty: f64,
    /// Added stall per dTLB miss (page-walk cost).
    pub tlb_penalty: f64,
}

impl Default for CostModel {
    fn default() -> Self {
        // Skylake-SP: L1 ~4cy (folded into base), L2 ~14cy, L3 ~50-70cy,
        // DRAM ~200cy, page walk ~30cy.
        CostModel {
            base_per_access: 4.0,
            l2_hit_penalty: 10.0,
            l3_hit_penalty: 45.0,
            dram_penalty: 180.0,
            tlb_penalty: 30.0,
        }
    }
}

/// Cycle estimate split into top-down-style buckets.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct CycleEstimate {
    /// Useful work (≈ "retiring").
    pub retiring: f64,
    /// Dispatch/bookkeeping overhead (≈ "core bound").
    pub core_bound: f64,
    /// Cache/TLB stalls (≈ "memory bound").
    pub memory_bound: f64,
}

impl CycleEstimate {
    /// Total estimated cycles.
    pub fn total(&self) -> f64 {
        self.retiring + self.core_bound + self.memory_bound
    }

    /// Percentage split `(retiring, core, memory)`, summing to 100 (or all
    /// zeros for an empty estimate).
    pub fn percentages(&self) -> (f64, f64, f64) {
        let t = self.total();
        if t == 0.0 {
            (0.0, 0.0, 0.0)
        } else {
            (
                100.0 * self.retiring / t,
                100.0 * self.core_bound / t,
                100.0 * self.memory_bound / t,
            )
        }
    }
}

impl CostModel {
    /// Estimate cycles for a counter delta, charging `dispatch_cycles` of
    /// core-bound overhead (e.g. the eager per-tuple pull cost × tuples).
    pub fn estimate(&self, c: &Counters, dispatch_cycles: f64) -> CycleEstimate {
        let l2_hits = c.l1d_misses - c.l2_misses;
        let l3_hits = c.l2_misses - c.l3_misses;
        CycleEstimate {
            retiring: c.accesses as f64 * self.base_per_access,
            core_bound: dispatch_cycles,
            memory_bound: l2_hits as f64 * self.l2_hit_penalty
                + l3_hits as f64 * self.l3_hit_penalty
                + c.l3_misses as f64 * self.dram_penalty
                + c.dtlb_misses as f64 * self.tlb_penalty,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn counters(accesses: u64, l1: u64, l2: u64, l3: u64, tlb: u64) -> Counters {
        Counters {
            accesses,
            l1d_misses: l1,
            l2_misses: l2,
            l3_misses: l3,
            dtlb_misses: tlb,
            prefetches: 0,
        }
    }

    #[test]
    fn all_l1_hits_is_pure_retiring() {
        let m = CostModel::default();
        let e = m.estimate(&counters(100, 0, 0, 0, 0), 0.0);
        assert_eq!(e.memory_bound, 0.0);
        assert_eq!(e.core_bound, 0.0);
        assert!((e.retiring - 400.0).abs() < 1e-9);
        let (r, c, mem) = e.percentages();
        assert!((r - 100.0).abs() < 1e-9);
        assert_eq!((c, mem), (0.0, 0.0));
    }

    #[test]
    fn dram_misses_dominate_memory_bound() {
        let m = CostModel::default();
        let e = m.estimate(&counters(100, 100, 100, 100, 0), 0.0);
        assert!(e.memory_bound > e.retiring * 10.0);
    }

    #[test]
    fn dispatch_charged_to_core_bound() {
        let m = CostModel::default();
        let e = m.estimate(&counters(10, 0, 0, 0, 0), 500.0);
        assert_eq!(e.core_bound, 500.0);
        let (_, c, _) = e.percentages();
        assert!(c > 90.0);
    }

    #[test]
    fn empty_estimate_percentages_are_zero() {
        assert_eq!(CycleEstimate::default().percentages(), (0.0, 0.0, 0.0));
    }

    #[test]
    fn penalties_are_monotone_in_depth() {
        let m = CostModel::default();
        let l2 = m.estimate(&counters(1, 1, 0, 0, 0), 0.0).memory_bound;
        let l3 = m.estimate(&counters(1, 1, 1, 0, 0), 0.0).memory_bound;
        let dram = m.estimate(&counters(1, 1, 1, 1, 0), 0.0).memory_bound;
        assert!(l2 < l3 && l3 < dram);
    }
}
