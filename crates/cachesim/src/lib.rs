#![warn(missing_docs)]

//! Software cache-hierarchy simulation.
//!
//! The paper profiles its algorithms with Intel PCM and `perf` (Figure 8,
//! Table 5, Figure 19a). Hardware counters are not portable, so this crate
//! substitutes a set-associative, LRU, three-level data-cache simulator plus
//! a data-TLB, driven by the memory traces of the join kernels. What the
//! paper *interprets* from its counters — which algorithm/phase misses more,
//! at which level, and by roughly what factor — is a property of the access
//! trace and the cache geometry, both of which we model exactly; absolute
//! counts per tuple will differ from silicon (no prefetchers, no speculative
//! accesses) and we document that in EXPERIMENTS.md.
//!
//! The default geometry mirrors the paper's evaluation machine, an Intel Xeon
//! Gold 6126 (Table 4): 32 KiB/8-way L1D, 1 MiB/16-way L2 per core, and a
//! 19.25 MiB/11-way shared L3, with a 64-entry 4-way dTLB over 4 KiB pages.

pub mod cache;
pub mod cost;
pub mod hierarchy;
pub mod tracer;

pub use cache::{CacheConfig, CacheLevel};
pub use cost::{CostModel, CycleEstimate};
pub use hierarchy::{CoreCaches, Counters, Hierarchy, SharedL3};
pub use tracer::{NoopTracer, Tracer};
