//! The `Tracer` abstraction that lets join kernels be written once and run
//! either at full speed (with [`NoopTracer`], which compiles to nothing) or
//! under cache simulation (with a [`CoreCaches`]-backed tracer).

use crate::hierarchy::CoreCaches;

/// Observer of a kernel's memory accesses. Implementations must be so cheap
/// that the no-op case vanishes under inlining.
pub trait Tracer {
    /// The kernel read `len` bytes starting at `addr`.
    fn read(&mut self, addr: usize, len: usize);

    /// The kernel wrote `len` bytes starting at `addr`. Write-allocate
    /// caches treat this identically to a read for residency purposes.
    fn write(&mut self, addr: usize, len: usize);

    /// The kernel issued an explicit software prefetch of the line at
    /// `addr`. Default is a no-op so existing tracers stay source
    /// compatible; the cache-backed tracer stages the line.
    #[inline]
    fn prefetch(&mut self, _addr: usize) {}

    /// Is this tracer live? Kernels may skip address computations entirely
    /// when it is not.
    #[inline]
    fn enabled(&self) -> bool {
        true
    }
}

/// The zero-cost tracer used on every hot path.
#[derive(Clone, Copy, Debug, Default)]
pub struct NoopTracer;

impl Tracer for NoopTracer {
    #[inline(always)]
    fn read(&mut self, _addr: usize, _len: usize) {}

    #[inline(always)]
    fn write(&mut self, _addr: usize, _len: usize) {}

    #[inline(always)]
    fn enabled(&self) -> bool {
        false
    }
}

impl Tracer for CoreCaches {
    #[inline]
    fn read(&mut self, addr: usize, len: usize) {
        self.access_range(addr as u64, len as u64);
    }

    #[inline]
    fn write(&mut self, addr: usize, len: usize) {
        self.access_range(addr as u64, len as u64);
    }

    #[inline]
    fn prefetch(&mut self, addr: usize) {
        self.prefetch_line(addr as u64);
    }
}

/// Blanket impl so `&mut T` works where a tracer is taken by value.
impl<T: Tracer + ?Sized> Tracer for &mut T {
    #[inline(always)]
    fn read(&mut self, addr: usize, len: usize) {
        (**self).read(addr, len);
    }

    #[inline(always)]
    fn write(&mut self, addr: usize, len: usize) {
        (**self).write(addr, len);
    }

    #[inline(always)]
    fn prefetch(&mut self, addr: usize) {
        (**self).prefetch(addr);
    }

    #[inline(always)]
    fn enabled(&self) -> bool {
        (**self).enabled()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hierarchy::shared_l3_default;

    #[test]
    fn noop_is_disabled() {
        let mut t = NoopTracer;
        assert!(!t.enabled());
        t.read(0, 8);
        t.write(0, 8);
    }

    #[test]
    fn core_caches_trace_counts() {
        let mut core = CoreCaches::new(shared_l3_default());
        {
            let t: &mut dyn Tracer = &mut core;
            assert!(t.enabled());
            t.read(0, 64);
            t.write(64, 64);
        }
        assert_eq!(core.counters().accesses, 2);
    }

    #[test]
    fn prefetch_forwards_and_stages() {
        let mut core = CoreCaches::new(shared_l3_default());
        {
            let t: &mut dyn Tracer = &mut core;
            t.prefetch(0);
        }
        let c = core.counters();
        assert_eq!(c.prefetches, 1);
        assert_eq!(c.accesses, 0);
        // NoopTracer's default impl compiles and does nothing.
        NoopTracer.prefetch(0);
    }

    #[test]
    fn mut_ref_forwards() {
        let mut core = CoreCaches::new(shared_l3_default());
        fn touch<T: Tracer>(mut t: T) {
            t.read(128, 1);
        }
        touch(&mut core);
        assert_eq!(core.counters().accesses, 1);
    }
}
