//! The three-level hierarchy plus dTLB, with per-core private levels and a
//! shared L3, matching the single-socket configuration of Table 4.

use crate::cache::{CacheConfig, CacheLevel};
use std::cell::RefCell;
use std::rc::Rc;

/// Miss counters accumulated over a tracing interval.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Counters {
    /// Total data accesses (each cache-line touch counts once).
    pub accesses: u64,
    /// L1D misses.
    pub l1d_misses: u64,
    /// L2 misses.
    pub l2_misses: u64,
    /// L3 misses (memory accesses).
    pub l3_misses: u64,
    /// Data-TLB misses.
    pub dtlb_misses: u64,
    /// Explicit software prefetches issued (`prefetcht0`-style hints).
    /// Not counted in `accesses` or any miss column: a prefetch stages
    /// lines without generating demand traffic, and this column keeps the
    /// scalar-vs-simd per-phase counters comparable.
    pub prefetches: u64,
}

impl Counters {
    /// Element-wise difference, for phase-delimited accounting.
    pub fn since(&self, earlier: &Counters) -> Counters {
        Counters {
            accesses: self.accesses - earlier.accesses,
            l1d_misses: self.l1d_misses - earlier.l1d_misses,
            l2_misses: self.l2_misses - earlier.l2_misses,
            l3_misses: self.l3_misses - earlier.l3_misses,
            dtlb_misses: self.dtlb_misses - earlier.dtlb_misses,
            prefetches: self.prefetches - earlier.prefetches,
        }
    }

    /// Element-wise sum, for aggregating cores.
    pub fn merged(&self, other: &Counters) -> Counters {
        Counters {
            accesses: self.accesses + other.accesses,
            l1d_misses: self.l1d_misses + other.l1d_misses,
            l2_misses: self.l2_misses + other.l2_misses,
            l3_misses: self.l3_misses + other.l3_misses,
            dtlb_misses: self.dtlb_misses + other.dtlb_misses,
            prefetches: self.prefetches + other.prefetches,
        }
    }

    /// Bytes fetched from DRAM (L3 misses × line size) — the quantity the
    /// Table 6 memory-bandwidth estimate is built on.
    pub fn dram_bytes(&self, line_bytes: u64) -> u64 {
        self.l3_misses * line_bytes
    }
}

/// The shared last-level cache, reference-counted so several `CoreCaches`
/// can point at the same L3 (traced cores run one at a time, so a `RefCell`
/// suffices; the tracing harness is single-threaded by design).
pub type SharedL3 = Rc<RefCell<CacheLevel>>;

/// Make a fresh shared L3 with the default (Gold 6126) geometry.
pub fn shared_l3_default() -> SharedL3 {
    Rc::new(RefCell::new(CacheLevel::new(CacheConfig::l3_gold6126())))
}

/// Private L1D + L2 + dTLB of one simulated core, backed by a shared L3.
#[derive(Clone)]
pub struct CoreCaches {
    l1d: CacheLevel,
    l2: CacheLevel,
    dtlb: CacheLevel,
    l3: SharedL3,
    counters: Counters,
    /// Next-line prefetching into L2 on L1 misses (off by default: the
    /// study's qualitative results are prefetch-independent, but the
    /// ablation quantifies how much a streaming prefetcher would mask).
    prefetch_next_line: bool,
    last_miss_line: u64,
}

impl CoreCaches {
    /// A core with the default Gold 6126 geometry on the given shared L3.
    pub fn new(l3: SharedL3) -> Self {
        CoreCaches {
            l1d: CacheLevel::new(CacheConfig::l1d_gold6126()),
            l2: CacheLevel::new(CacheConfig::l2_gold6126()),
            dtlb: CacheLevel::new(CacheConfig::dtlb()),
            l3,
            counters: Counters::default(),
            prefetch_next_line: false,
            last_miss_line: u64::MAX,
        }
    }

    /// A core with custom private geometries (tests, sensitivity studies).
    pub fn with_configs(
        l1d: CacheConfig,
        l2: CacheConfig,
        dtlb: CacheConfig,
        l3: SharedL3,
    ) -> Self {
        CoreCaches {
            l1d: CacheLevel::new(l1d),
            l2: CacheLevel::new(l2),
            dtlb: CacheLevel::new(dtlb),
            l3,
            counters: Counters::default(),
            prefetch_next_line: false,
            last_miss_line: u64::MAX,
        }
    }

    /// Enable the next-line stream prefetcher: when two consecutive lines
    /// miss L1 in sequence, the following line is pulled into L2 (and L3)
    /// ahead of use, as Intel's streamer does for ascending accesses.
    pub fn enable_prefetch(&mut self) {
        self.prefetch_next_line = true;
    }

    /// Touch one cache line containing `addr`. Walks L1 → L2 → L3 on misses
    /// and consults the dTLB for the page.
    #[inline]
    pub fn access_line(&mut self, addr: u64) {
        self.counters.accesses += 1;
        if !self.dtlb.access(addr) {
            self.counters.dtlb_misses += 1;
        }
        if self.l1d.access(addr) {
            return;
        }
        self.counters.l1d_misses += 1;
        let line = addr >> 6;
        if self.prefetch_next_line {
            if line == self.last_miss_line.wrapping_add(1) {
                // Ascending miss stream detected: stage the next line into
                // L2/L3 without counting it as a demand access.
                let next = (line + 1) << 6;
                self.l2.access(next);
                self.l3.borrow_mut().access(next);
            }
            self.last_miss_line = line;
        }
        if self.l2.access(addr) {
            return;
        }
        self.counters.l2_misses += 1;
        if !self.l3.borrow_mut().access(addr) {
            self.counters.l3_misses += 1;
        }
    }

    /// Non-temporal (streaming) store of one full cache line, as `movntdq`
    /// issues them: the page is still translated through the dTLB, but the
    /// data bypasses L1/L2/L3 via the core's write-combining buffers and
    /// goes straight to memory. Modelled as one access and one memory-level
    /// write (counted in `l3_misses`, which feeds the DRAM-byte estimate)
    /// with no cache allocation or pollution.
    #[inline]
    pub fn store_line_nt(&mut self, addr: u64) {
        self.counters.accesses += 1;
        if !self.dtlb.access(addr) {
            self.counters.dtlb_misses += 1;
        }
        self.counters.l3_misses += 1;
    }

    /// Non-temporal store over a byte range, line by line.
    #[inline]
    pub fn store_range_nt(&mut self, addr: u64, len: u64) {
        if len == 0 {
            return;
        }
        let line = 64u64;
        let first = addr & !(line - 1);
        let last = (addr + len - 1) & !(line - 1);
        let mut a = first;
        loop {
            self.store_line_nt(a);
            if a == last {
                break;
            }
            a += line;
        }
    }

    /// Touch a byte range, line by line.
    #[inline]
    pub fn access_range(&mut self, addr: u64, len: u64) {
        if len == 0 {
            return;
        }
        let line = 64u64;
        let first = addr & !(line - 1);
        let last = (addr + len - 1) & !(line - 1);
        let mut a = first;
        loop {
            self.access_line(a);
            if a == last {
                break;
            }
            a += line;
        }
    }

    /// Explicit software prefetch of the line containing `addr`, as
    /// `prefetcht0` behaves: the page is translated through the dTLB and
    /// the line is staged into L1/L2/L3, but nothing is recorded as a
    /// demand access or demand miss — a prefetch hides latency, it does
    /// not add it. Only the `prefetches` column moves.
    #[inline]
    pub fn prefetch_line(&mut self, addr: u64) {
        self.counters.prefetches += 1;
        self.dtlb.access(addr);
        if self.l1d.access(addr) {
            return;
        }
        if self.l2.access(addr) {
            return;
        }
        self.l3.borrow_mut().access(addr);
    }

    /// Counter snapshot.
    pub fn counters(&self) -> Counters {
        self.counters
    }

    /// Zero this core's counters (contents stay warm).
    pub fn reset_counters(&mut self) {
        self.counters = Counters::default();
    }
}

/// Convenience wrapper: one traced "machine" — N cores over one L3.
pub struct Hierarchy {
    /// The cores; index = simulated thread id.
    pub cores: Vec<CoreCaches>,
    l3: SharedL3,
}

impl Hierarchy {
    /// A machine with `n_cores` default cores sharing a default L3.
    pub fn new(n_cores: usize) -> Self {
        let l3 = shared_l3_default();
        let cores = (0..n_cores).map(|_| CoreCaches::new(l3.clone())).collect();
        Hierarchy { cores, l3 }
    }

    /// Total counters across all cores.
    pub fn total(&self) -> Counters {
        self.cores
            .iter()
            .fold(Counters::default(), |acc, c| acc.merged(&c.counters()))
    }

    /// L3 miss count (shared level, counted once).
    pub fn l3_misses(&self) -> u64 {
        self.l3.borrow().misses()
    }

    /// Zero all counters.
    pub fn reset_counters(&mut self) {
        for c in &mut self.cores {
            c.reset_counters();
        }
        self.l3.borrow_mut().reset_counters();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequential_scan_mostly_hits_after_first_touch() {
        let mut h = Hierarchy::new(1);
        let core = &mut h.cores[0];
        // Scan 4 KiB byte-by-byte: 64 line touches of 64 accesses each.
        for b in 0..4096u64 {
            core.access_range(b, 1);
        }
        let c = core.counters();
        assert_eq!(c.accesses, 4096);
        assert_eq!(c.l1d_misses, 64, "one cold miss per line");
    }

    #[test]
    fn nt_stores_bypass_the_caches_but_not_the_tlb() {
        let mut h = Hierarchy::new(1);
        let core = &mut h.cores[0];
        // Stream 64 full lines (one 4 KiB page) non-temporally.
        core.store_range_nt(1 << 20, 4096);
        let c = core.counters();
        assert_eq!(c.accesses, 64);
        assert_eq!(c.l1d_misses, 0, "NT stores allocate no cache lines");
        assert_eq!(c.l2_misses, 0);
        assert_eq!(c.l3_misses, 64, "each line is a DRAM write");
        assert_eq!(c.dtlb_misses, 1, "one page, one translation miss");
        // A later demand load of the same line must still miss L1: the NT
        // store left nothing behind.
        core.reset_counters();
        core.access_line(1 << 20);
        assert_eq!(core.counters().l1d_misses, 1);
    }

    #[test]
    fn l2_absorbs_l1_overflow() {
        let mut h = Hierarchy::new(1);
        let core = &mut h.cores[0];
        // Working set of 256 KiB: fits L2 (1 MiB) but not L1 (32 KiB).
        let lines: Vec<u64> = (0..4096u64).map(|i| i * 64).collect();
        for &l in &lines {
            core.access_line(l);
        }
        core.reset_counters();
        for &l in &lines {
            core.access_line(l);
        }
        let c = core.counters();
        assert_eq!(c.accesses, 4096);
        assert_eq!(c.l1d_misses, 4096, "L1 too small: every access misses L1");
        assert_eq!(c.l2_misses, 0, "L2 holds the whole set");
    }

    #[test]
    fn shared_l3_sees_both_cores() {
        let mut h = Hierarchy::new(2);
        // Core 0 loads a line into the shared L3...
        h.cores[0].access_line(0x10000);
        // ...then core 1 misses privately but hits in L3.
        h.cores[1].access_line(0x10000);
        let c1 = h.cores[1].counters();
        assert_eq!(c1.l1d_misses, 1);
        assert_eq!(c1.l2_misses, 1);
        assert_eq!(c1.l3_misses, 0, "line was resident in the shared L3");
    }

    #[test]
    fn prefetcher_masks_sequential_l2_misses() {
        // A long ascending scan over an L2-busting working set: without
        // prefetch every line misses L2 on first touch; with it, the
        // streamer stages lines ahead so demand L2 misses collapse.
        let n_lines = 1u64 << 16; // 4 MiB
        let mut plain = Hierarchy::new(1);
        for i in 0..n_lines {
            plain.cores[0].access_line(i * 64);
        }
        let mut pf = Hierarchy::new(1);
        pf.cores[0].enable_prefetch();
        for i in 0..n_lines {
            pf.cores[0].access_line(i * 64);
        }
        let plain_l2 = plain.total().l2_misses;
        let pf_l2 = pf.total().l2_misses;
        assert!(
            pf_l2 * 2 < plain_l2,
            "prefetch should mask most sequential L2 misses: {pf_l2} vs {plain_l2}"
        );
        // Random access sees no benefit (and no harm to correctness).
        let mut rng = 0x12345u64;
        let mut next = || {
            rng ^= rng << 13;
            rng ^= rng >> 7;
            rng ^= rng << 17;
            rng % (1 << 26)
        };
        let mut pf_rand = Hierarchy::new(1);
        pf_rand.cores[0].enable_prefetch();
        for _ in 0..10_000 {
            pf_rand.cores[0].access_line(next());
        }
        let c = pf_rand.total();
        assert_eq!(c.accesses, 10_000);
    }

    #[test]
    fn counters_delta_and_merge() {
        let a = Counters {
            accesses: 10,
            l1d_misses: 5,
            l2_misses: 3,
            l3_misses: 1,
            dtlb_misses: 2,
            prefetches: 4,
        };
        let b = Counters {
            accesses: 4,
            l1d_misses: 2,
            l2_misses: 1,
            l3_misses: 0,
            dtlb_misses: 1,
            prefetches: 1,
        };
        let d = a.since(&b);
        assert_eq!(d.accesses, 6);
        assert_eq!(d.l1d_misses, 3);
        assert_eq!(d.prefetches, 3);
        let m = a.merged(&b);
        assert_eq!(m.accesses, 14);
        assert_eq!(m.prefetches, 5);
        assert_eq!(m.dram_bytes(64), 64);
    }

    #[test]
    fn prefetch_stages_lines_without_demand_misses() {
        let mut h = Hierarchy::new(1);
        let core = &mut h.cores[0];
        // Prefetch 64 cold lines, then demand-load them: the loads should
        // all hit L1 while the prefetches themselves count no misses.
        for i in 0..64u64 {
            core.prefetch_line(i * 64);
        }
        let c = core.counters();
        assert_eq!(c.prefetches, 64);
        assert_eq!(c.accesses, 0, "prefetches are not demand accesses");
        assert_eq!(c.l1d_misses, 0, "prefetches count no demand misses");
        assert_eq!(c.dtlb_misses, 0);
        for i in 0..64u64 {
            core.access_line(i * 64);
        }
        let c = core.counters();
        assert_eq!(c.accesses, 64);
        assert_eq!(c.l1d_misses, 0, "prefetched lines are L1-resident");
    }

    #[test]
    fn range_access_spans_lines() {
        let mut h = Hierarchy::new(1);
        let core = &mut h.cores[0];
        // 8 bytes straddling a line boundary touches two lines.
        core.access_range(60, 8);
        assert_eq!(core.counters().accesses, 2);
        core.access_range(0, 0);
        assert_eq!(core.counters().accesses, 2, "zero-length touch is free");
    }

    #[test]
    fn random_over_l3_misses_to_dram() {
        let mut h = Hierarchy::new(1);
        let core = &mut h.cores[0];
        // 64 MiB working set, strided to defeat every level.
        let n = 1 << 20;
        for i in 0..n {
            core.access_line((i * 64) % (64 << 20));
        }
        core.reset_counters();
        let l3_before = h.l3_misses();
        for i in 0..n {
            h.cores[0].access_line((i * 64) % (64 << 20));
        }
        let c = h.cores[0].counters();
        assert!(c.l3_misses > n / 2, "expected DRAM traffic, got {c:?}");
        assert!(h.l3_misses() > l3_before);
    }
}
