//! `iawj serve` — run the continuous streaming join service.
//!
//! Generates a Micro-style workload spanning `--duration-ms` of stream
//! time, pumps both sides through rate-limited sources into bounded SPSC
//! ingress queues (pacing compressed by `--speedup`), and drives a
//! [`StreamingJoin`] with the chosen window spec and engine. Periodic
//! [`StreamTick`] lines report throughput, watermark, queue depths, late
//! drops and backpressure; `--metrics-out` additionally writes each tick as
//! a `{"type":"stream",...}` JSONL line followed by a summary line.

use crate::args::{ArgError, Args};
use crate::workload::{apply_exec_opts, parse_algorithm, warn_if_oversubscribed};
use iawj_common::spsc::stream_channel;
use iawj_core::streaming::{spawn_source, StreamConfig, StreamReport, StreamingJoin};
use iawj_core::windowing::WindowSpec;
use iawj_core::RunConfig;
use iawj_datagen::{MicroSpec, PacedSource, ReplaySource};
use iawj_obs::json::{quote, write_f64};
use iawj_obs::StreamTick;
use std::fmt::Write as _;

/// Parse `--window-spec tumbling:LEN | sliding:LEN/SLIDE | session:GAP`.
pub fn parse_window_spec(text: &str) -> Result<WindowSpec, ArgError> {
    let invalid = || ArgError::Invalid {
        key: "window-spec".into(),
        value: text.into(),
        expected: "tumbling:LEN | sliding:LEN/SLIDE | session:GAP (ms, positive)",
    };
    let (kind, rest) = text.split_once(':').ok_or_else(invalid)?;
    let parse_ms = |s: &str| s.parse::<u32>().ok().filter(|&v| v > 0);
    match kind {
        "tumbling" => Ok(WindowSpec::Tumbling {
            len_ms: parse_ms(rest).ok_or_else(invalid)?,
        }),
        "sliding" => {
            let (len, slide) = rest.split_once('/').ok_or_else(invalid)?;
            Ok(WindowSpec::Sliding {
                len_ms: parse_ms(len).ok_or_else(invalid)?,
                slide_ms: parse_ms(slide).ok_or_else(invalid)?,
            })
        }
        "session" => Ok(WindowSpec::Session {
            gap_ms: parse_ms(rest).ok_or_else(invalid)?,
        }),
        _ => Err(invalid()),
    }
}

/// Options `serve` accepts beyond the shared workload/run sets.
pub const SERVE_OPTS: &[&str] = &[
    "window-spec",
    "duration-ms",
    "lateness",
    "queue-cap",
    "tick-ms",
    "no-share",
];

/// Reject non-finite, zero, or negative values for rates and pacing knobs:
/// a NaN or ≤0 speedup stalls the paced sources forever, a ≤0 tick never
/// fires, and ≤0 ingest rates generate nothing while claiming a duration.
fn require_positive_finite(key: &'static str, value: f64) -> Result<f64, ArgError> {
    if value.is_finite() && value > 0.0 {
        Ok(value)
    } else {
        Err(ArgError::Invalid {
            key: key.into(),
            value: format!("{value}"),
            expected: "a finite value > 0",
        })
    }
}

/// Run the service and render its report.
pub fn cmd_serve(args: &Args) -> Result<String, ArgError> {
    let algo = parse_algorithm(args)?;
    let spec = parse_window_spec(&args.get_or("window-spec", "tumbling:250".to_string())?)?;
    let duration_ms: u32 = args.get_or("duration-ms", 3000)?;
    let lateness: u32 = args.get_or("lateness", 0)?;
    let queue_cap: usize = args.get_or("queue-cap", 1024)?;
    let speedup = require_positive_finite("speedup", args.get_or("speedup", 25.0)?)?;
    let tick_ms = require_positive_finite("tick-ms", args.get_or("tick-ms", 250.0)?)?;
    let rate_r = require_positive_finite("rate-r", args.get_or("rate-r", 100.0)?)?;
    let rate_s = require_positive_finite("rate-s", args.get_or("rate-s", 100.0)?)?;
    let threads: usize = args.get_or("threads", 2.min(iawj_exec::affinity_core_count().max(1)))?;
    warn_if_oversubscribed(threads);
    if duration_ms == 0 {
        return Err(ArgError::Invalid {
            key: "duration-ms".into(),
            value: "0".into(),
            expected: "a positive stream duration",
        });
    }
    if queue_cap == 0 {
        return Err(ArgError::Invalid {
            key: "queue-cap".into(),
            value: "0".into(),
            expected: "a positive queue capacity",
        });
    }
    // A Micro workload spanning the whole serve duration: the generator's
    // window is the stream, and its rates set the ingest rates.
    let micro = MicroSpec {
        rate_r,
        rate_s,
        window_ms: duration_ms,
        dupe: args.get_or("dupe", 1usize)?.max(1),
        skew_key: args.get_or("skew-key", 0.0)?,
        skew_ts: args.get_or("skew-ts", 0.0)?,
        static_data: false,
        count_r: None,
        count_s: None,
        seed: args.get_or("seed", 42)?,
    };
    let ds = micro.generate();
    let mut run = RunConfig::with_threads(threads);
    apply_exec_opts(args, &mut run)?;
    let cfg = StreamConfig::new(spec, algo)
        .lateness(lateness)
        .share_panes(!args.flag("no-share"))
        .run_config(run)
        .tick_every_ms(tick_ms);

    let (tx_r, rx_r) = stream_channel(queue_cap);
    let (tx_s, rx_s) = stream_channel(queue_cap);
    let h_r = spawn_source(PacedSource::new(ReplaySource::new(ds.r), speedup), tx_r);
    let h_s = spawn_source(PacedSource::new(ReplaySource::new(ds.s), speedup), tx_s);

    let json = args.flag("json");
    let mut dashboard = String::new();
    let mut tick_lines: Vec<String> = Vec::new();
    let report = StreamingJoin::new(cfg).run(
        rx_r,
        rx_s,
        |_w| {},
        |t: &StreamTick| {
            if !json {
                dashboard.push_str(&t.to_text());
                dashboard.push('\n');
            }
            tick_lines.push(t.to_jsonl());
        },
    );
    let _ = h_r.join();
    let _ = h_s.join();

    if let Some(path) = args.get("metrics-out") {
        let mut out = tick_lines.join("\n");
        out.push('\n');
        out.push_str(&summary_json(&report, algo.name(), spec));
        out.push('\n');
        std::fs::write(path, out).map_err(|e| ArgError::Invalid {
            key: "metrics-out".into(),
            value: format!("{path}: {e}"),
            expected: "a writable path",
        })?;
    }
    Ok(if json {
        summary_json(&report, algo.name(), spec)
    } else {
        let mut out = dashboard;
        out.push_str(&summary_text(&report, algo.name(), spec));
        out
    })
}

fn spec_label(spec: WindowSpec) -> String {
    match spec {
        WindowSpec::Tumbling { len_ms } => format!("tumbling:{len_ms}"),
        WindowSpec::Sliding { len_ms, slide_ms } => format!("sliding:{len_ms}/{slide_ms}"),
        WindowSpec::Session { gap_ms } => format!("session:{gap_ms}"),
    }
}

fn summary_text(r: &StreamReport, engine: &str, spec: WindowSpec) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "engine:        {engine}");
    let _ = writeln!(out, "window spec:   {}", spec_label(spec));
    let _ = writeln!(
        out,
        "ingested:      {} tuples over {} stream-ms ({:.1} t/ms)",
        r.ingested_r + r.ingested_s,
        r.stream_ms,
        r.throughput_tpms()
    );
    let _ = writeln!(
        out,
        "windows:       {} closed, {} matches",
        r.windows.len(),
        r.matches
    );
    let _ = writeln!(
        out,
        "late dropped:  {}    backpressure waits: {}",
        r.late_dropped, r.backpressure_waits
    );
    let _ = writeln!(
        out,
        "close join ms: p50 {}  p99 {}  max {}",
        fmt_q(r.close_hist.quantile_ms(0.50)),
        fmt_q(r.close_hist.quantile_ms(0.99)),
        fmt_q(r.close_hist.max_ms()),
    );
    let _ = writeln!(
        out,
        "peak state:    {} panes resident, queue depth {}",
        r.peak_resident_panes, r.peak_queue_depth
    );
    let _ = writeln!(out, "wall time:     {:.0} ms", r.wall_ms);
    out
}

fn fmt_q(v: Option<f64>) -> String {
    v.map(|v| format!("{v:.2}")).unwrap_or_else(|| "-".into())
}

fn summary_json(r: &StreamReport, engine: &str, spec: WindowSpec) -> String {
    let mut out = String::from("{\"type\":\"stream_summary\",\"engine\":");
    out.push_str(&quote(engine));
    out.push_str(",\"window_spec\":");
    out.push_str(&quote(&spec_label(spec)));
    let _ = write!(
        out,
        ",\"ingested\":{},\"stream_ms\":{},\"windows\":{},\"matches\":{},\
         \"late_dropped\":{},\"backpressure_waits\":{},\"engine_runs\":{},\
         \"peak_resident_panes\":{},\"peak_queue_depth\":{},\"throughput_tpms\":",
        r.ingested_r + r.ingested_s,
        r.stream_ms,
        r.windows.len(),
        r.matches,
        r.late_dropped,
        r.backpressure_waits,
        r.engine_runs,
        r.peak_resident_panes,
        r.peak_queue_depth,
    );
    write_f64(&mut out, r.throughput_tpms());
    out.push_str(",\"close_p99_ms\":");
    match r.close_hist.quantile_ms(0.99) {
        Some(v) => write_f64(&mut out, v),
        None => out.push_str("null"),
    }
    out.push_str(",\"wall_ms\":");
    write_f64(&mut out, r.wall_ms);
    out.push('}');
    out
}
