//! Building datasets and run configurations from CLI options.

use crate::args::{ArgError, Args};
use iawj_common::KernelBackend;
use iawj_core::{Algorithm, ExecMode, NpjTable, PinPolicy, RunConfig, ScatterMode, Scheduler};
use iawj_datagen::{debs, rovio, stock, ysb, Dataset, MicroSpec};
use iawj_exec::{affinity_core_count, SortBackend};

/// Options shared by every dataset-consuming subcommand.
pub const WORKLOAD_OPTS: &[&str] = &[
    "workload", "scale", "seed", "rate-r", "rate-s", "window", "dupe", "skew-key", "skew-ts",
    "count-r", "count-s", "static", "input-r", "input-s",
];

/// Options shared by every executing subcommand.
pub const RUN_OPTS: &[&str] = &[
    "threads",
    "speedup",
    "sample-every",
    "delta",
    "radix-bits",
    "group-size",
    "scalar-sort",
    "eager-merge",
    "scheduler",
    "morsel-size",
    "scatter",
    "npj-table",
    "kernel",
    "prefetch-dist",
    "executor",
    "pin",
    "index-partitions",
    "index-epochs",
    "repart-factor",
    "evict-horizon",
    "json",
    "perf",
    "trace-out",
    "metrics-out",
];

/// Parse `--algo`.
pub fn parse_algorithm(args: &Args) -> Result<Algorithm, ArgError> {
    let name: String = args.require("algo")?;
    algorithm_by_name(&name).ok_or(ArgError::Invalid {
        key: "algo".into(),
        value: name,
        expected: "NPJ|PRJ|MWAY|MPASS|SHJ_JM|SHJ_JB|PMJ_JM|PMJ_JB|HANDSHAKE|IBWJ|IBWJ_PART",
    })
}

/// Case-insensitive algorithm lookup; dashes are accepted for underscores
/// (`ibwj-part` names `IBWJ_PART`).
pub fn algorithm_by_name(name: &str) -> Option<Algorithm> {
    let upper = name.to_ascii_uppercase().replace('-', "_");
    Algorithm::STUDIED
        .into_iter()
        .chain([Algorithm::Handshake])
        .chain(Algorithm::INDEX)
        .find(|a| a.name() == upper)
}

/// Build the dataset selected by `--workload` (default: micro), or load
/// both streams from CSV when `--input-r`/`--input-s` are given.
pub fn build_dataset(args: &Args) -> Result<Dataset, ArgError> {
    if args.get("input-r").is_some() || args.get("input-s").is_some() {
        return load_csv_dataset(args);
    }
    let workload: String = args.get_or("workload", "micro".to_string())?;
    let scale: f64 = args.get_or("scale", 0.01)?;
    let seed: u64 = args.get_or("seed", 42)?;
    match workload.as_str() {
        "stock" => Ok(stock(scale, seed)),
        "rovio" => Ok(rovio(scale, seed)),
        "ysb" => Ok(ysb(scale, seed)),
        "debs" => Ok(debs(scale, seed)),
        "micro" => {
            let mut spec = MicroSpec {
                rate_r: args.get_or("rate-r", 1600.0)?,
                rate_s: args.get_or("rate-s", 1600.0)?,
                window_ms: args.get_or("window", 1000)?,
                dupe: args.get_or("dupe", 1usize)?.max(1),
                skew_key: args.get_or("skew-key", 0.0)?,
                skew_ts: args.get_or("skew-ts", 0.0)?,
                static_data: args.flag("static"),
                count_r: None,
                count_s: None,
                seed,
            };
            if let Some(v) = args.get("count-r") {
                spec.count_r = Some(v.parse().map_err(|_| ArgError::Invalid {
                    key: "count-r".into(),
                    value: v.into(),
                    expected: "a tuple count",
                })?);
            }
            if let Some(v) = args.get("count-s") {
                spec.count_s = Some(v.parse().map_err(|_| ArgError::Invalid {
                    key: "count-s".into(),
                    value: v.into(),
                    expected: "a tuple count",
                })?);
            }
            if spec.static_data && spec.count_r.is_none() {
                spec.count_r = Some(spec.n_r());
                spec.count_s = Some(spec.n_s());
            }
            Ok(spec.generate())
        }
        other => Err(ArgError::Invalid {
            key: "workload".into(),
            value: other.into(),
            expected: "micro|stock|rovio|ysb|debs",
        }),
    }
}

/// Load both streams from `--input-r` / `--input-s` CSV files. The window
/// is `--window` (default: covers the latest timestamp).
fn load_csv_dataset(args: &Args) -> Result<Dataset, ArgError> {
    use iawj_common::{Rate, Window};
    use iawj_datagen::io::load_stream;
    let load = |key: &'static str| -> Result<Vec<iawj_common::Tuple>, ArgError> {
        let path: String = args.require(key)?;
        load_stream(&path).map_err(|e| ArgError::Invalid {
            key: key.into(),
            value: format!("{path}: {e}"),
            expected: "a readable key,ts CSV file",
        })
    };
    let r = load("input-r")?;
    let s = load("input-s")?;
    let max_ts = r
        .last()
        .map(|t| t.ts)
        .unwrap_or(0)
        .max(s.last().map(|t| t.ts).unwrap_or(0));
    let window_ms: u32 = args.get_or("window", max_ts.saturating_add(1))?;
    let rate = |stream: &[iawj_common::Tuple]| {
        if max_ts == 0 {
            Rate::Infinite
        } else {
            Rate::PerMs(stream.len() as f64 / max_ts as f64)
        }
    };
    Ok(Dataset {
        name: "csv".into(),
        rate_r: rate(&r),
        rate_s: rate(&s),
        r,
        s,
        window: Window::of_len(window_ms),
    })
}

/// Default `--threads`: 4, bounded by the cores this process may actually
/// use (the affinity-mask cardinality, not the machine's core count).
pub fn default_threads() -> usize {
    4.min(affinity_core_count().max(1))
}

/// Warn (don't reject) when `threads` exceeds the affinity mask:
/// oversubscription is a legitimate experiment, but silent timesharing
/// corrupts scalability readings.
pub fn warn_if_oversubscribed(threads: usize) {
    let avail = affinity_core_count();
    if threads > avail {
        eprintln!(
            "warning: --threads {threads} oversubscribes the {avail}-core affinity mask; \
             workers will timeshare"
        );
    }
}

/// Apply `--executor` / `--pin` to a run configuration. Shared by every
/// subcommand that executes joins so the knobs mean the same thing in
/// one-shot runs and the streaming service.
pub fn apply_exec_opts(args: &Args, cfg: &mut RunConfig) -> Result<(), ArgError> {
    if let Some(v) = args.get("executor") {
        cfg.exec.mode = v.parse::<ExecMode>().map_err(|_| ArgError::Invalid {
            key: "executor".into(),
            value: v.into(),
            expected: "spawn|pool",
        })?;
    }
    if let Some(v) = args.get("pin") {
        cfg.exec.pin = v.parse::<PinPolicy>().map_err(|_| ArgError::Invalid {
            key: "pin".into(),
            value: v.into(),
            expected: "none|compact|scatter",
        })?;
    }
    Ok(())
}

/// Build a run configuration from CLI options.
pub fn build_config(args: &Args) -> Result<RunConfig, ArgError> {
    let mut cfg = RunConfig::with_threads(args.get_or("threads", default_threads())?)
        .speedup(args.get_or("speedup", 25.0)?);
    warn_if_oversubscribed(cfg.threads);
    apply_exec_opts(args, &mut cfg)?;
    cfg.sample_every = args.get_or("sample-every", 64)?;
    cfg.pmj.delta = args.get_or("delta", cfg.pmj.delta)?;
    cfg.prj.radix_bits = args.get_or("radix-bits", cfg.prj.radix_bits)?;
    cfg.jb.group_size = args.get_or("group-size", cfg.jb.group_size)?;
    if args.flag("scalar-sort") {
        cfg.sort = SortBackend::Scalar;
    }
    cfg.pmj.eager_merge = args.flag("eager-merge");
    if let Some(v) = args.get("scheduler") {
        cfg.sched.scheduler = v.parse::<Scheduler>().map_err(|_| ArgError::Invalid {
            key: "scheduler".into(),
            value: v.into(),
            expected: "static|steal",
        })?;
    }
    cfg.sched.morsel_size = args.get_or("morsel-size", cfg.sched.morsel_size)?;
    if cfg.sched.morsel_size == 0 {
        return Err(ArgError::Invalid {
            key: "morsel-size".into(),
            value: "0".into(),
            expected: "a positive tuple count",
        });
    }
    if let Some(v) = args.get("scatter") {
        cfg.prj.scatter = v.parse::<ScatterMode>().map_err(|_| ArgError::Invalid {
            key: "scatter".into(),
            value: v.into(),
            expected: "direct|swwc",
        })?;
    }
    if let Some(v) = args.get("npj-table") {
        cfg.npj.table = v.parse::<NpjTable>().map_err(|_| ArgError::Invalid {
            key: "npj-table".into(),
            value: v.into(),
            expected: "latch|lockfree",
        })?;
    }
    if let Some(v) = args.get("kernel") {
        cfg.kernel.backend = v.parse::<KernelBackend>().map_err(|_| ArgError::Invalid {
            key: "kernel".into(),
            value: v.into(),
            expected: "scalar|simd",
        })?;
    }
    cfg.kernel.prefetch_dist = args.get_or("prefetch-dist", cfg.kernel.prefetch_dist)?;
    if cfg.kernel.prefetch_dist == 0 {
        return Err(ArgError::Invalid {
            key: "prefetch-dist".into(),
            value: "0".into(),
            expected: "a positive lookahead distance",
        });
    }
    cfg.index.partitions = args.get_or("index-partitions", cfg.index.partitions)?;
    cfg.index.epochs = args.get_or("index-epochs", cfg.index.epochs)?;
    if cfg.index.epochs == 0 {
        return Err(ArgError::Invalid {
            key: "index-epochs".into(),
            value: "0".into(),
            expected: "a positive epoch count",
        });
    }
    cfg.index.repart_factor = args.get_or("repart-factor", cfg.index.repart_factor)?;
    if !(cfg.index.repart_factor.is_finite() && cfg.index.repart_factor >= 1.0) {
        return Err(ArgError::Invalid {
            key: "repart-factor".into(),
            value: format!("{}", cfg.index.repart_factor),
            expected: "a finite imbalance factor >= 1.0",
        });
    }
    if let Some(v) = args.get("evict-horizon") {
        cfg.index.evict_horizon_ms = Some(v.parse().map_err(|_| ArgError::Invalid {
            key: "evict-horizon".into(),
            value: v.into(),
            expected: "a horizon in ms",
        })?);
    }
    // Trace and metrics export need per-worker span journals.
    cfg.journal = args.get("trace-out").is_some() || args.get("metrics-out").is_some();
    // Hardware counters: explicit opt-in, and implied by the metrics
    // journal so its phase lines carry measured cycles where possible.
    cfg.perf = args.flag("perf") || args.get("metrics-out").is_some();
    Ok(cfg)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(s: &str) -> Args {
        Args::parse(&s.split_whitespace().map(String::from).collect::<Vec<_>>()).unwrap()
    }

    #[test]
    fn algorithm_lookup_is_case_insensitive() {
        assert_eq!(algorithm_by_name("npj"), Some(Algorithm::Npj));
        assert_eq!(algorithm_by_name("Shj_Jm"), Some(Algorithm::ShjJm));
        assert_eq!(algorithm_by_name("handshake"), Some(Algorithm::Handshake));
        assert_eq!(algorithm_by_name("ibwj"), Some(Algorithm::Ibwj));
        assert_eq!(algorithm_by_name("ibwj-part"), Some(Algorithm::IbwjPart));
        assert_eq!(algorithm_by_name("IBWJ_PART"), Some(Algorithm::IbwjPart));
        assert_eq!(algorithm_by_name("nope"), None);
    }

    #[test]
    fn index_knobs() {
        let cfg = build_config(&parse("")).unwrap();
        assert_eq!(cfg.index.partitions, 0);
        assert_eq!(cfg.index.epochs, 8);
        assert_eq!(cfg.index.evict_horizon_ms, None);
        let cfg = build_config(&parse(
            "--index-partitions 32 --index-epochs 4 --repart-factor 2.0 --evict-horizon 500",
        ))
        .unwrap();
        assert_eq!(cfg.index.partitions, 32);
        assert_eq!(cfg.index.epochs, 4);
        assert!((cfg.index.repart_factor - 2.0).abs() < 1e-9);
        assert_eq!(cfg.index.evict_horizon_ms, Some(500));
        assert!(build_config(&parse("--index-epochs 0")).is_err());
        assert!(build_config(&parse("--repart-factor 0.5")).is_err());
        assert!(build_config(&parse("--evict-horizon soon")).is_err());
    }

    #[test]
    fn micro_defaults() {
        let ds = build_dataset(&parse("--rate-r 5 --rate-s 5 --window 100 --seed 1")).unwrap();
        assert_eq!(ds.name, "Micro");
        assert_eq!(ds.r.len(), 500);
    }

    #[test]
    fn static_micro_with_counts() {
        let ds = build_dataset(&parse("--static --count-r 100 --count-s 200")).unwrap();
        assert!(ds.is_static());
        assert_eq!(ds.r.len(), 100);
        assert_eq!(ds.s.len(), 200);
    }

    #[test]
    fn real_workloads_by_name() {
        for name in ["stock", "rovio", "ysb", "debs"] {
            let ds = build_dataset(&parse(&format!("--workload {name} --scale 0.002"))).unwrap();
            assert!(ds.total_inputs() > 0, "{name}");
        }
    }

    #[test]
    fn bad_workload_is_an_error() {
        assert!(build_dataset(&parse("--workload tpch")).is_err());
    }

    #[test]
    fn config_knobs() {
        let cfg =
            build_config(&parse("--threads 2 --speedup 50 --delta 0.3 --scalar-sort")).unwrap();
        assert_eq!(cfg.threads, 2);
        assert_eq!(cfg.sort, SortBackend::Scalar);
        assert!((cfg.pmj.delta - 0.3).abs() < 1e-9);
        assert_eq!(cfg.sched.scheduler, Scheduler::Static);
    }

    #[test]
    fn scheduler_knobs() {
        let cfg = build_config(&parse("--scheduler steal --morsel-size 256")).unwrap();
        assert_eq!(cfg.sched.scheduler, Scheduler::Steal);
        assert_eq!(cfg.sched.morsel_size, 256);
        assert!(build_config(&parse("--scheduler adaptive")).is_err());
        assert!(
            build_config(&parse("--morsel-size 0")).is_err(),
            "a zero morsel size must be rejected at the flag level"
        );
    }

    #[test]
    fn npj_table_knob() {
        let cfg = build_config(&parse("")).unwrap();
        assert_eq!(cfg.npj.table, NpjTable::Latch);
        let cfg = build_config(&parse("--npj-table lockfree")).unwrap();
        assert_eq!(cfg.npj.table, NpjTable::LockFree);
        let cfg = build_config(&parse("--npj-table latch")).unwrap();
        assert_eq!(cfg.npj.table, NpjTable::Latch);
        assert!(build_config(&parse("--npj-table mutex")).is_err());
    }

    #[test]
    fn kernel_knob() {
        let cfg = build_config(&parse("")).unwrap();
        assert_eq!(cfg.kernel.backend, KernelBackend::Simd);
        assert_eq!(cfg.kernel.prefetch_dist, iawj_common::DEFAULT_PREFETCH_DIST);
        let cfg = build_config(&parse("--kernel scalar")).unwrap();
        assert_eq!(cfg.kernel.backend, KernelBackend::Scalar);
        let cfg = build_config(&parse("--kernel simd --prefetch-dist 16")).unwrap();
        assert_eq!(cfg.kernel.backend, KernelBackend::Simd);
        assert_eq!(cfg.kernel.prefetch_dist, 16);
        assert!(build_config(&parse("--kernel avx512")).is_err());
        assert!(
            build_config(&parse("--prefetch-dist 0")).is_err(),
            "a zero prefetch distance must be rejected at the flag level"
        );
    }

    #[test]
    fn perf_and_journal_knobs() {
        let cfg = build_config(&parse("")).unwrap();
        assert!(!cfg.perf);
        assert!(!cfg.journal);
        let cfg = build_config(&parse("--perf")).unwrap();
        assert!(cfg.perf);
        assert!(!cfg.journal);
        // A metrics journal implies both.
        let cfg = build_config(&parse("--metrics-out /tmp/m.jsonl")).unwrap();
        assert!(cfg.perf);
        assert!(cfg.journal);
        let cfg = build_config(&parse("--trace-out /tmp/t.json")).unwrap();
        assert!(cfg.journal);
        assert!(!cfg.perf);
    }

    #[test]
    fn executor_and_pin_knobs() {
        let cfg = build_config(&parse("")).unwrap();
        assert_eq!(cfg.exec.mode, ExecMode::Pool);
        assert_eq!(cfg.exec.pin, PinPolicy::None);
        let cfg = build_config(&parse("--executor spawn")).unwrap();
        assert_eq!(cfg.exec.mode, ExecMode::Spawn);
        let cfg = build_config(&parse("--executor pool --pin compact")).unwrap();
        assert_eq!(cfg.exec.mode, ExecMode::Pool);
        assert_eq!(cfg.exec.pin, PinPolicy::Compact);
        let cfg = build_config(&parse("--pin scatter")).unwrap();
        assert_eq!(cfg.exec.pin, PinPolicy::Scatter);
        assert!(build_config(&parse("--executor rayon")).is_err());
        assert!(build_config(&parse("--pin numa")).is_err());
    }

    #[test]
    fn default_threads_respects_affinity_mask() {
        let d = default_threads();
        assert!(d >= 1 && d <= 4);
        assert!(d <= affinity_core_count().max(1));
    }

    #[test]
    fn scatter_knob() {
        let cfg = build_config(&parse("")).unwrap();
        assert_eq!(cfg.prj.scatter, ScatterMode::Direct);
        let cfg = build_config(&parse("--scatter swwc")).unwrap();
        assert_eq!(cfg.prj.scatter, ScatterMode::Swwc);
        let cfg = build_config(&parse("--scatter direct")).unwrap();
        assert_eq!(cfg.prj.scatter, ScatterMode::Direct);
        assert!(build_config(&parse("--scatter buffered")).is_err());
    }
}
