//! Serializable run summaries — the CLI's JSON interface for plotting
//! pipelines and scripts.

use iawj_core::metrics::{latency_quantile_ms, progressiveness, thin_curve};
use iawj_core::RunResult;
use serde::Serialize;

/// The metrics of one run, flattened for JSON output.
#[derive(Debug, Serialize)]
pub struct RunSummary {
    /// Algorithm name.
    pub algorithm: String,
    /// Worker threads used.
    pub threads: usize,
    /// Total input tuples.
    pub total_inputs: usize,
    /// Total matches.
    pub matches: u64,
    /// Throughput in tuples per stream-ms.
    pub throughput_tpms: f64,
    /// 95th-percentile latency in stream-ms (absent when no matches).
    pub latency_p95_ms: Option<f64>,
    /// Median latency in stream-ms.
    pub latency_p50_ms: Option<f64>,
    /// Stream time of the last match.
    pub last_emit_ms: f64,
    /// Total elapsed stream time.
    pub elapsed_ms: f64,
    /// CPU utilisation estimate (0..1).
    pub cpu_utilisation: f64,
    /// Per-phase share of total time, `[wait, partition, build_sort,
    /// merge, probe, other]`, each 0..1.
    pub phase_fractions: [f64; 6],
    /// Progressiveness curve thinned to at most 32 `(stream_ms, fraction)`
    /// points.
    pub progress: Vec<(f64, f64)>,
}

impl RunSummary {
    /// Summarise a run result.
    pub fn from_result(r: &RunResult) -> Self {
        let phase_fractions = {
            let mut f = [0.0; 6];
            for (i, p) in iawj_common::PHASES.iter().enumerate() {
                f[i] = r.breakdown.fraction(*p);
            }
            f
        };
        RunSummary {
            algorithm: r.algorithm.name().to_string(),
            threads: r.threads,
            total_inputs: r.total_inputs,
            matches: r.matches,
            throughput_tpms: r.throughput_tpms(),
            latency_p95_ms: latency_quantile_ms(r, 0.95),
            latency_p50_ms: latency_quantile_ms(r, 0.50),
            last_emit_ms: r.last_emit_ms,
            elapsed_ms: r.elapsed_ms,
            cpu_utilisation: r.cpu_utilisation(),
            phase_fractions,
            progress: thin_curve(&progressiveness(r), 32),
        }
    }

    /// Render as pretty JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("summary is always serializable")
    }

    /// Render as aligned human-readable text.
    pub fn to_text(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        let _ = writeln!(out, "algorithm:     {}", self.algorithm);
        let _ = writeln!(out, "threads:       {}", self.threads);
        let _ = writeln!(out, "inputs:        {}", self.total_inputs);
        let _ = writeln!(out, "matches:       {}", self.matches);
        let _ = writeln!(out, "throughput:    {:.1} tuples/ms", self.throughput_tpms);
        match self.latency_p95_ms {
            Some(p95) => {
                let _ = writeln!(out, "latency p95:   {p95:.2} ms");
            }
            None => {
                let _ = writeln!(out, "latency p95:   - (no matches)");
            }
        }
        let _ = writeln!(out, "elapsed:       {:.1} ms (stream time)", self.elapsed_ms);
        let _ = writeln!(out, "cpu util:      {:.1}%", self.cpu_utilisation * 100.0);
        let labels = ["wait", "partition", "build/sort", "merge", "probe", "others"];
        let shares: Vec<String> = labels
            .iter()
            .zip(self.phase_fractions.iter())
            .filter(|(_, &f)| f > 0.0005)
            .map(|(l, f)| format!("{l} {:.1}%", f * 100.0))
            .collect();
        let _ = writeln!(out, "phases:        {}", shares.join(", "));
        if let Some(&(t, _)) = self
            .progress
            .iter()
            .find(|&&(_, frac)| frac >= 0.5)
        {
            let _ = writeln!(out, "50% matches:   by {t:.1} ms");
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use iawj_core::{execute, Algorithm, RunConfig};
    use iawj_datagen::MicroSpec;

    fn sample_summary() -> RunSummary {
        let ds = MicroSpec::static_counts(500, 500).dupe(5).seed(1).generate();
        let result = execute(Algorithm::Npj, &ds, &RunConfig::with_threads(2));
        RunSummary::from_result(&result)
    }

    #[test]
    fn summary_fields_are_consistent() {
        let s = sample_summary();
        assert_eq!(s.algorithm, "NPJ");
        assert_eq!(s.total_inputs, 1000);
        assert_eq!(s.matches, 2500, "500 tuples over 100 keys x 5 dupes each side");
        assert!(s.throughput_tpms > 0.0);
        let total: f64 = s.phase_fractions.iter().sum();
        assert!((total - 1.0).abs() < 1e-6, "fractions sum to 1, got {total}");
    }

    #[test]
    fn json_round_trips_through_serde() {
        let s = sample_summary();
        let json = s.to_json();
        let parsed: serde_json::Value = serde_json::from_str(&json).unwrap();
        assert_eq!(parsed["algorithm"], "NPJ");
        assert_eq!(parsed["matches"], 2500);
        assert!(parsed["progress"].as_array().is_some());
    }

    #[test]
    fn text_mentions_the_essentials() {
        let text = sample_summary().to_text();
        assert!(text.contains("algorithm:     NPJ"));
        assert!(text.contains("throughput:"));
        assert!(text.contains("matches:"));
    }
}
