//! Run summaries — the CLI's JSON and text interface for plotting
//! pipelines and scripts. JSON is written by hand through
//! [`iawj_obs::json`] so the workspace stays dependency-free.

use iawj_common::{PhaseCounters, PHASES};
use iawj_core::metrics::{
    latency_max_ms, latency_quantile_exact_ms, latency_quantile_ms, progressiveness, thin_curve,
};
use iawj_core::RunResult;
use iawj_exec::{cpu_clock, ns_to_cycles};
use iawj_obs::json::{array, quote, write_f64};
use iawj_obs::perf::{
    COUNTER_NAMES, IDX_BRANCH_MISSES, IDX_DTLB_MISSES, IDX_L1D_MISSES, IDX_LLC_MISSES,
};
use iawj_obs::{breakdown_table, PhaseRow};

/// The metrics of one run, flattened for JSON output.
#[derive(Debug)]
pub struct RunSummary {
    /// Algorithm name.
    pub algorithm: String,
    /// Hot-loop kernel backend label (`"scalar"` or `"simd"`).
    pub kernel: String,
    /// Worker threads used.
    pub threads: usize,
    /// Total input tuples.
    pub total_inputs: usize,
    /// Total matches.
    pub matches: u64,
    /// Throughput in tuples per stream-ms.
    pub throughput_tpms: f64,
    /// 95th-percentile latency in stream-ms over the sampled matches
    /// (absent when no matches).
    pub latency_p95_ms: Option<f64>,
    /// Median latency in stream-ms over the sampled matches.
    pub latency_p50_ms: Option<f64>,
    /// 99th-percentile latency from the full-population histogram —
    /// covers every match, not just the sampled subset.
    pub latency_p99_ms: Option<f64>,
    /// Exact worst-case latency from the histogram.
    pub latency_max_ms: Option<f64>,
    /// Stream time of the last match.
    pub last_emit_ms: f64,
    /// Total elapsed stream time.
    pub elapsed_ms: f64,
    /// CPU utilisation estimate (0..1).
    pub cpu_utilisation: f64,
    /// Per-phase share of total time, `[wait, partition, build_sort,
    /// merge, probe, other]`, each 0..1.
    pub phase_fractions: [f64; 6],
    /// Per-phase nanoseconds summed over workers, same order.
    pub phase_ns: [u64; 6],
    /// Per-phase cycles at the calibrated clock ([`cpu_clock`]), same
    /// order.
    pub phase_cycles: [f64; 6],
    /// The ns → cycles conversion frequency, in GHz.
    pub clock_ghz: f64,
    /// Where the clock came from: `"env"`, `"measured"` or `"assumed"`.
    pub clock_source: &'static str,
    /// Per-phase hardware-counter deltas summed over workers.
    pub counters: PhaseCounters,
    /// `"perf"` when the counters are real, `"none"` otherwise.
    pub counter_source: &'static str,
    /// Per-phase `(min, max)` nanoseconds across workers (skew columns of
    /// the breakdown table).
    pub phase_minmax_ns: [(u64, u64); 6],
    /// Progressiveness curve thinned to at most 32 `(stream_ms, fraction)`
    /// points.
    pub progress: Vec<(f64, f64)>,
}

impl RunSummary {
    /// Summarise a run result.
    pub fn from_result(r: &RunResult) -> Self {
        let mut phase_fractions = [0.0; 6];
        let mut phase_ns = [0u64; 6];
        let mut phase_cycles = [0.0; 6];
        let mut phase_minmax_ns = [(0u64, 0u64); 6];
        for (i, p) in PHASES.iter().enumerate() {
            phase_fractions[i] = r.breakdown.fraction(*p);
            phase_ns[i] = r.breakdown[*p];
            phase_cycles[i] = ns_to_cycles(phase_ns[i]);
            if !r.per_thread.is_empty() {
                let per: Vec<u64> = r.per_thread.iter().map(|b| b[*p]).collect();
                phase_minmax_ns[i] = (
                    *per.iter().min().expect("non-empty"),
                    *per.iter().max().expect("non-empty"),
                );
            }
        }
        let clock = cpu_clock();
        RunSummary {
            algorithm: r.algorithm.name().to_string(),
            kernel: iawj_common::KernelBackend::default().label().to_string(),
            threads: r.threads,
            total_inputs: r.total_inputs,
            matches: r.matches,
            throughput_tpms: r.throughput_tpms(),
            latency_p95_ms: latency_quantile_ms(r, 0.95),
            latency_p50_ms: latency_quantile_ms(r, 0.50),
            latency_p99_ms: latency_quantile_exact_ms(r, 0.99),
            latency_max_ms: latency_max_ms(r),
            last_emit_ms: r.last_emit_ms,
            elapsed_ms: r.elapsed_ms,
            cpu_utilisation: r.cpu_utilisation(),
            phase_fractions,
            phase_ns,
            phase_cycles,
            clock_ghz: clock.ghz,
            clock_source: clock.source.label(),
            counters: r.counters,
            counter_source: r.counter_source.label(),
            phase_minmax_ns,
            progress: thin_curve(&progressiveness(r), 32),
        }
    }

    /// Builder: record which kernel backend the run used (the config is
    /// not part of [`RunResult`], so the caller supplies the label).
    pub fn with_kernel(mut self, label: &str) -> Self {
        self.kernel = label.to_string();
        self
    }

    /// Render as pretty JSON.
    pub fn to_json(&self) -> String {
        fn num(v: f64) -> String {
            let mut s = String::new();
            write_f64(&mut s, v);
            s
        }
        fn opt(v: Option<f64>) -> String {
            v.map(num).unwrap_or_else(|| "null".into())
        }
        fn field(out: &mut String, key: &str, val: String) {
            out.push_str("  ");
            out.push_str(&quote(key));
            out.push_str(": ");
            out.push_str(&val);
            out.push_str(",\n");
        }
        let mut out = String::from("{\n");
        field(&mut out, "algorithm", quote(&self.algorithm));
        field(&mut out, "kernel", quote(&self.kernel));
        field(&mut out, "threads", self.threads.to_string());
        field(&mut out, "total_inputs", self.total_inputs.to_string());
        field(&mut out, "matches", self.matches.to_string());
        field(&mut out, "throughput_tpms", num(self.throughput_tpms));
        field(&mut out, "latency_p50_ms", opt(self.latency_p50_ms));
        field(&mut out, "latency_p95_ms", opt(self.latency_p95_ms));
        field(&mut out, "latency_p99_ms", opt(self.latency_p99_ms));
        field(&mut out, "latency_max_ms", opt(self.latency_max_ms));
        field(&mut out, "last_emit_ms", num(self.last_emit_ms));
        field(&mut out, "elapsed_ms", num(self.elapsed_ms));
        field(&mut out, "cpu_utilisation", num(self.cpu_utilisation));
        field(
            &mut out,
            "phase_fractions",
            array(self.phase_fractions.iter().map(|&f| num(f))),
        );
        field(
            &mut out,
            "phase_ns",
            array(self.phase_ns.iter().map(|n| n.to_string())),
        );
        field(
            &mut out,
            "phase_cycles",
            array(self.phase_cycles.iter().map(|&c| num(c))),
        );
        field(&mut out, "clock_ghz", num(self.clock_ghz));
        field(&mut out, "clock_source", quote(self.clock_source));
        field(&mut out, "counter_source", quote(self.counter_source));
        field(
            &mut out,
            "phase_counters",
            array(PHASES.iter().map(|p| {
                let c = self.counters[*p];
                let mut obj = String::from("{");
                for (i, name) in COUNTER_NAMES.iter().enumerate() {
                    if i > 0 {
                        obj.push_str(", ");
                    }
                    obj.push_str(&format!("{}: {}", quote(name), c.vals[i]));
                }
                obj.push('}');
                obj
            })),
        );
        field(
            &mut out,
            "progress",
            array(self.progress.iter().map(|&(t, f)| array([num(t), num(f)]))),
        );
        // Drop the trailing comma before closing the object.
        out.truncate(out.trim_end_matches([',', '\n']).len());
        out.push_str("\n}");
        out
    }

    /// The six phases as table rows for [`breakdown_table`].
    pub fn phase_rows(&self) -> Vec<PhaseRow> {
        PHASES
            .iter()
            .enumerate()
            .map(|(i, p)| PhaseRow {
                label: p.label(),
                total_ns: self.phase_ns[i],
                min_ns: self.phase_minmax_ns[i].0,
                max_ns: self.phase_minmax_ns[i].1,
            })
            .collect()
    }

    /// Render as aligned human-readable text.
    pub fn to_text(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        let _ = writeln!(out, "algorithm:     {}", self.algorithm);
        let _ = writeln!(out, "kernel:        {}", self.kernel);
        let _ = writeln!(out, "threads:       {}", self.threads);
        let _ = writeln!(out, "inputs:        {}", self.total_inputs);
        let _ = writeln!(out, "matches:       {}", self.matches);
        let _ = writeln!(out, "throughput:    {:.1} tuples/ms", self.throughput_tpms);
        match self.latency_p95_ms {
            Some(p95) => {
                let _ = writeln!(out, "latency p95:   {p95:.2} ms");
            }
            None => {
                let _ = writeln!(out, "latency p95:   - (no matches)");
            }
        }
        if let (Some(p99), Some(max)) = (self.latency_p99_ms, self.latency_max_ms) {
            let _ = writeln!(out, "latency p99:   {p99:.2} ms (exact)  max: {max:.2} ms");
        }
        let _ = writeln!(
            out,
            "elapsed:       {:.1} ms (stream time)",
            self.elapsed_ms
        );
        let _ = writeln!(out, "cpu util:      {:.1}%", self.cpu_utilisation * 100.0);
        let labels = [
            "wait",
            "partition",
            "build/sort",
            "merge",
            "probe",
            "others",
        ];
        let shares: Vec<String> = labels
            .iter()
            .zip(self.phase_fractions.iter())
            .filter(|(_, &f)| f > 0.0005)
            .map(|(l, f)| format!("{l} {:.1}%", f * 100.0))
            .collect();
        let _ = writeln!(out, "phases:        {}", shares.join(", "));
        if let Some(&(t, _)) = self.progress.iter().find(|&&(_, frac)| frac >= 0.5) {
            let _ = writeln!(out, "50% matches:   by {t:.1} ms");
        }
        let _ = writeln!(
            out,
            "breakdown:     (cycles at {:.2} GHz, {} clock)",
            self.clock_ghz, self.clock_source
        );
        out.push_str(&breakdown_table(&self.phase_rows(), self.clock_ghz));
        out.push_str(&self.counters_text());
        out
    }

    /// The hardware-counter table, or a one-line note when the run had no
    /// perf access (cachesim columns via `iawj trace` remain available).
    fn counters_text(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        if self.counter_source != "perf" {
            let _ = writeln!(
                out,
                "hw counters:   unavailable (perf_event denied or unsupported; \
                 `iawj trace` reports simulated cache misses)"
            );
            return out;
        }
        let _ = writeln!(
            out,
            "hw counters:   per phase (misses per kilo-instruction in brackets)"
        );
        let _ = writeln!(
            out,
            "  {:<12} {:>14} {:>14} {:>6} {:>12} {:>12} {:>12} {:>12}",
            "phase", "cycles", "instr", "ipc", "l1d", "llc", "dtlb", "branch"
        );
        for p in PHASES {
            let c = self.counters[p];
            if c.is_zero() {
                continue;
            }
            let mpki = |idx: usize| {
                c.per_kilo_instruction(idx)
                    .map(|v| format!("{v:.2}"))
                    .unwrap_or_else(|| "-".into())
            };
            let _ = writeln!(
                out,
                "  {:<12} {:>14} {:>14} {:>6} {:>12} {:>12} {:>12} {:>12}",
                p.label(),
                c.cycles(),
                c.instructions(),
                c.ipc()
                    .map(|v| format!("{v:.2}"))
                    .unwrap_or_else(|| "-".into()),
                mpki(IDX_L1D_MISSES),
                mpki(IDX_LLC_MISSES),
                mpki(IDX_DTLB_MISSES),
                mpki(IDX_BRANCH_MISSES),
            );
        }
        out
    }
}

/// Render a run as a JSONL metrics journal (`--metrics-out`): one
/// `summary` line, one `histogram` line with full-population latency
/// quantiles, one `phase` line per phase, and one `journal` line per
/// journaled worker.
pub fn metrics_jsonl(summary: &RunSummary, r: &RunResult) -> String {
    fn num(v: f64) -> String {
        let mut s = String::new();
        write_f64(&mut s, v);
        s
    }
    fn opt(v: Option<f64>) -> String {
        v.map(num).unwrap_or_else(|| "null".into())
    }
    let mut out = String::new();
    out.push_str(&format!(
        "{{\"type\":\"summary\",\"algorithm\":{},\"kernel\":{},\"threads\":{},\
         \"total_inputs\":{},\"matches\":{},\"throughput_tpms\":{},\"elapsed_ms\":{},\
         \"cpu_utilisation\":{}}}\n",
        quote(&summary.algorithm),
        quote(&summary.kernel),
        summary.threads,
        summary.total_inputs,
        summary.matches,
        num(summary.throughput_tpms),
        num(summary.elapsed_ms),
        num(summary.cpu_utilisation),
    ));
    out.push_str(&format!(
        "{{\"type\":\"histogram\",\"count\":{},\"p50_ms\":{},\"p95_ms\":{},\
         \"p99_ms\":{},\"max_ms\":{}}}\n",
        r.hist.count(),
        opt(r.hist.quantile_ms(0.50)),
        opt(r.hist.quantile_ms(0.95)),
        opt(r.hist.quantile_ms(0.99)),
        opt(r.hist.max_ms()),
    ));
    out.push_str(&format!(
        "{{\"type\":\"clock\",\"ghz\":{},\"source\":{},\"counter_source\":{}}}\n",
        num(summary.clock_ghz),
        quote(summary.clock_source),
        quote(summary.counter_source),
    ));
    for (row, phase) in summary.phase_rows().into_iter().zip(PHASES) {
        let c = summary.counters[phase];
        let mut counters = String::from("{");
        for (i, (name, v)) in COUNTER_NAMES.iter().zip(c.vals.iter()).enumerate() {
            if i > 0 {
                counters.push(',');
            }
            counters.push_str(&format!("{}:{}", quote(name), v));
        }
        counters.push('}');
        out.push_str(&format!(
            "{{\"type\":\"phase\",\"label\":{},\"total_ns\":{},\"min_ns\":{},\"max_ns\":{},\
             \"counters\":{counters}}}\n",
            quote(row.label),
            row.total_ns,
            row.min_ns,
            row.max_ns,
        ));
    }
    for (wid, j) in &r.journals {
        out.push_str(&format!(
            "{{\"type\":\"journal\",\"worker\":{},\"spans\":{},\"marks\":{},\"dropped\":{}}}\n",
            wid,
            j.span_count(),
            j.mark_count(),
            j.dropped(),
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use iawj_core::{execute, Algorithm, RunConfig};
    use iawj_datagen::MicroSpec;
    use iawj_obs::json::Json;

    fn sample_summary() -> RunSummary {
        let ds = MicroSpec::static_counts(500, 500)
            .dupe(5)
            .seed(1)
            .generate();
        let result = execute(Algorithm::Npj, &ds, &RunConfig::with_threads(2));
        RunSummary::from_result(&result)
    }

    #[test]
    fn summary_fields_are_consistent() {
        let s = sample_summary();
        assert_eq!(s.algorithm, "NPJ");
        assert_eq!(s.total_inputs, 1000);
        assert_eq!(
            s.matches, 2500,
            "500 tuples over 100 keys x 5 dupes each side"
        );
        assert!(s.throughput_tpms > 0.0);
        let total: f64 = s.phase_fractions.iter().sum();
        assert!(
            (total - 1.0).abs() < 1e-6,
            "fractions sum to 1, got {total}"
        );
        // The phase arrays agree with each other.
        let ns_total: u64 = s.phase_ns.iter().sum();
        assert!(ns_total > 0);
        assert!((s.clock_ghz - cpu_clock().ghz).abs() < 1e-9);
        assert!(["env", "measured", "assumed"].contains(&s.clock_source));
        for i in 0..6 {
            assert!((s.phase_cycles[i] - s.phase_ns[i] as f64 * s.clock_ghz).abs() < 1e-6);
            let (min, max) = s.phase_minmax_ns[i];
            assert!(min <= max);
            assert!(max <= s.phase_ns[i]);
        }
        // Exact histogram quantiles are present whenever matches exist.
        assert!(s.latency_p99_ms.is_some());
        assert!(s.latency_max_ms.unwrap() >= s.latency_p99_ms.unwrap() - 1e-9);
    }

    #[test]
    fn json_is_valid_and_complete() {
        let s = sample_summary();
        let parsed = Json::parse(&s.to_json()).expect("summary emits valid JSON");
        assert_eq!(parsed.get("algorithm").and_then(Json::as_str), Some("NPJ"));
        assert_eq!(parsed.get("matches").and_then(Json::as_u64), Some(2500));
        assert_eq!(
            parsed
                .get("phase_ns")
                .and_then(Json::as_arr)
                .map(<[Json]>::len),
            Some(6)
        );
        assert_eq!(
            parsed
                .get("phase_cycles")
                .and_then(Json::as_arr)
                .map(<[Json]>::len),
            Some(6)
        );
        assert!(parsed
            .get("latency_p99_ms")
            .and_then(Json::as_f64)
            .is_some());
        assert!(parsed.get("progress").and_then(Json::as_arr).is_some());
    }

    #[test]
    fn jsonl_lines_each_parse() {
        let ds = MicroSpec::static_counts(400, 400)
            .dupe(4)
            .seed(2)
            .generate();
        let mut cfg = RunConfig::with_threads(2).record_all();
        cfg.journal = true;
        let result = execute(Algorithm::Prj, &ds, &cfg);
        let summary = RunSummary::from_result(&result);
        let jsonl = metrics_jsonl(&summary, &result);
        let lines: Vec<&str> = jsonl.lines().collect();
        // summary + histogram + clock + 6 phases + one journal line per
        // worker.
        assert_eq!(lines.len(), 3 + 6 + 2, "{jsonl}");
        for line in &lines {
            let v = Json::parse(line).expect("every JSONL line parses");
            assert!(v.get("type").and_then(Json::as_str).is_some());
        }
        // With sample_every = 1 the histogram p95 agrees with the
        // sample-based quantile within the 1/128 bucket error.
        let p95_hist = result.hist.quantile_ms(0.95).unwrap();
        let p95_samples = latency_quantile_ms(&result, 0.95).unwrap();
        assert!(
            (p95_hist - p95_samples).abs() <= p95_samples * 0.02 + 0.01,
            "hist={p95_hist} samples={p95_samples}"
        );
    }

    #[test]
    fn text_mentions_the_essentials() {
        let text = sample_summary().to_text();
        assert!(text.contains("algorithm:     NPJ"));
        assert!(text.contains("throughput:"));
        assert!(text.contains("matches:"));
        assert!(text.contains("breakdown:"));
        assert!(text.contains("build/sort"));
        assert!(text.contains("total"));
        // The cycle columns are labeled with their clock provenance.
        assert!(
            text.contains("GHz, env clock")
                || text.contains("GHz, measured clock")
                || text.contains("GHz, assumed clock"),
            "{text}"
        );
        // Without perf the counters section degrades to a note.
        assert!(
            text.contains("hw counters:   per phase") || text.contains("unavailable"),
            "{text}"
        );
    }

    #[test]
    fn json_carries_clock_and_counter_provenance() {
        let s = sample_summary();
        let parsed = Json::parse(&s.to_json()).unwrap();
        assert!(parsed.get("clock_ghz").and_then(Json::as_f64).unwrap() > 0.0);
        assert!(parsed.get("clock_source").and_then(Json::as_str).is_some());
        let source = parsed.get("counter_source").and_then(Json::as_str).unwrap();
        assert!(source == "perf" || source == "none");
        let counters = parsed.get("phase_counters").and_then(Json::as_arr).unwrap();
        assert_eq!(counters.len(), 6);
        for c in counters {
            assert!(c.get("cycles").and_then(Json::as_u64).is_some());
            assert!(c.get("instructions").and_then(Json::as_u64).is_some());
        }
    }

    #[test]
    fn perf_run_summary_never_panics_and_labels_source() {
        // With --perf semantics (cfg.perf = true) the summary must carry
        // either real counters or an explicit "none", on every host.
        let ds = MicroSpec::static_counts(300, 300)
            .dupe(3)
            .seed(3)
            .generate();
        let cfg = RunConfig::with_threads(2).with_journal().with_perf();
        let result = execute(Algorithm::Npj, &ds, &cfg);
        let s = RunSummary::from_result(&result);
        if s.counter_source == "perf" {
            assert!(!s.counters.is_zero());
            assert!(s.counters.total().instructions() > 0);
        } else {
            assert_eq!(s.counter_source, "none");
            assert!(s.counters.is_zero());
        }
        let _ = s.to_text();
        let _ = s.to_json();
    }
}
