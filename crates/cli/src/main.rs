//! `iawj` — command-line driver for the intra-window-join study.

use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match iawj_cli::run_cli(&args) {
        Ok(output) => {
            println!("{output}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            if e.show_usage {
                eprintln!("error: {e}");
                eprintln!();
                eprintln!("{}", iawj_cli::USAGE);
            } else {
                eprintln!("{e}");
            }
            ExitCode::FAILURE
        }
    }
}
