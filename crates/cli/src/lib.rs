#![warn(missing_docs)]

//! The `iawj` command-line driver: generate a workload, run any studied
//! algorithm over it, sweep a parameter, consult the decision tree, or
//! profile an algorithm under the cache simulator — without writing Rust.
//!
//! ```text
//! iawj run --algo PRJ --workload ysb --scale 0.01 --threads 4
//! iawj run --algo SHJ_JM --rate-r 100 --rate-s 100 --dupe 10 --json
//! iawj recommend --rate-r 800 --rate-s 800 --dupe 50 --objective latency
//! iawj sweep --param dupe --values 1,10,100 --algo MPASS --static
//! iawj trace --algo NPJ --workload rovio --scale 0.002
//! ```

pub mod args;
pub mod serve;
pub mod summary;
pub mod workload;

use args::{ArgError, Args};
use iawj_core::adaptive::sniff;
use iawj_core::decision::{calibrate, recommend, Objective, Thresholds};
use iawj_core::{execute, trace};
use iawj_obs::{diff, BenchSnapshot, DiffThresholds};
use summary::{metrics_jsonl, RunSummary};
use workload::{build_config, build_dataset, parse_algorithm, RUN_OPTS, WORKLOAD_OPTS};

/// A CLI failure: what to print on stderr, and whether the usage text
/// should follow it. Argument mistakes want the usage; a bench-diff
/// regression wants only its report (it already says what to do).
#[derive(Debug)]
pub struct CliError {
    /// Text for stderr.
    pub message: String,
    /// Print [`USAGE`] after the message?
    pub show_usage: bool,
}

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

impl From<ArgError> for CliError {
    fn from(e: ArgError) -> Self {
        CliError {
            message: e.to_string(),
            show_usage: true,
        }
    }
}

impl From<&str> for CliError {
    fn from(message: &str) -> Self {
        CliError {
            message: message.to_string(),
            show_usage: true,
        }
    }
}

/// Top-level usage text.
pub const USAGE: &str = "\
iawj — intra-window join study driver

USAGE:
  iawj <run|serve|recommend|sweep|trace|generate|bench-diff> [options]

  Any subcommand also accepts --input-r FILE --input-s FILE to join your
  own key,ts CSV streams instead of a generated workload.

WORKLOAD OPTIONS (all subcommands):
  --workload micro|stock|rovio|ysb|debs   (default micro)
  --scale F          real-workload scale, 1.0 = paper size (default 0.01)
  --seed N           generator seed (default 42)
  micro only: --rate-r F --rate-s F --window MS --dupe N
              --skew-key F --skew-ts F --static --count-r N --count-s N

RUN OPTIONS (run, sweep, trace):
  --algo NAME        NPJ|PRJ|MWAY|MPASS|SHJ_JM|SHJ_JB|PMJ_JM|PMJ_JB|HANDSHAKE
                     |IBWJ|IBWJ_PART (dashes accepted: ibwj-part)
  --threads N        worker threads (default 4, capped to the affinity mask;
                     oversubscribing the mask warns)
  --executor MODE    worker provisioning: pool (persistent parked workers,
                     the default) | spawn (fresh threads per run)
  --pin POLICY       pool worker placement: none|compact|scatter (default
                     none; compact packs SMT siblings and NUMA nodes,
                     scatter round-robins across nodes)
  --speedup F        stream-time compression (default 25)
  --sample-every N   match sampling rate (default 64)
  --delta F          PMJ sorting step size (default 0.2)
  --eager-merge      PMJ: progressive per-run merging instead of a final merge
  --radix-bits N     PRJ radix bits (default 10)
  --group-size N     JB group size (default 2)
  --scalar-sort      disable the vectorizable sort backend
  --scheduler MODE   work distribution: static|steal (default static)
  --morsel-size N    steal-mode morsel size in tuples (default 1024, must be >0)
  --scatter MODE     PRJ scatter path: direct|swwc (default direct)
  --npj-table MODE   NPJ shared table: latch|lockfree (default latch)
  --kernel MODE      hot-loop kernels: scalar|simd (default simd; simd batches
                     hashing 8 keys wide and software-prefetches bucket heads)
  --prefetch-dist N  simd probe/build prefetch lookahead in tuples (default 8)
  --index-partitions N  IBWJ_PART sub-index partitions (default 4*threads,
                     rounded up to a power of two)
  --index-epochs N   IBWJ_PART repartition epochs per run (default 8, must be >0)
  --repart-factor F  IBWJ_PART imbalance trigger: rebalance when the heaviest
                     worker exceeds the ideal share by F (default 1.5)
  --evict-horizon N  index engines: evict entries more than N ms behind the
                     newest arrival (default: keep the whole window)
  --json             machine-readable output
  --perf             sample hardware counters per phase (perf_event; falls
                     back silently where unavailable)
  --trace-out FILE   write a Chrome-trace JSON profile (one lane per worker,
                     IPC/MPKI counter tracks when --perf sampled)
  --metrics-out FILE write a JSONL metrics journal (histogram, phases;
                     implies --perf)

SERVE OPTIONS (continuous streaming join; also takes --algo, --threads,
--speedup, --rate-r, --rate-s, --dupe, --skew-key, --skew-ts, --seed,
--json, --metrics-out):
  --window-spec S    tumbling:LEN | sliding:LEN/SLIDE | session:GAP in ms
                     (default tumbling:250)
  --duration-ms N    stream time to generate and ingest (default 3000)
  --lateness N       allowed out-of-orderness in ms (default 0)
  --queue-cap N      ingress SPSC queue capacity (default 1024)
  --tick-ms F        metrics tick interval in wall ms (default 250)
  --no-share         disable pane sharing for sliding windows

RECOMMEND OPTIONS:
  --objective throughput|latency|progressiveness   (default throughput)
  --calibrate        measure this host's rate bands first

SWEEP OPTIONS:
  --param rate|dupe|skew-key|skew-ts|window
  --values A,B,C     parameter values to sweep

GENERATE OPTIONS:
  --out-r FILE --out-s FILE   write the workload's streams as CSV

BENCH-DIFF:
  iawj bench-diff OLD.json NEW.json [--max-tpt-drop F] [--max-p99-rise F]
                                    [--warn-only]
  Compare two BENCH_*.json snapshots per configuration. Exits non-zero
  when any matching run's throughput dropped more than --max-tpt-drop
  (default 0.20) or its p99 latency rose more than --max-p99-rise
  (default 0.50), unless --warn-only.
";

/// Entry point shared by the binary and the tests: returns the text to
/// print, or what to report on stderr.
pub fn run_cli(argv: &[String]) -> Result<String, CliError> {
    let (cmd, rest) = argv.split_first().ok_or("no subcommand given")?;
    if cmd == "help" || cmd == "--help" {
        return Ok(USAGE.to_string());
    }
    if cmd == "bench-diff" {
        // Positional paths, which Args::parse would reject.
        return cmd_bench_diff(rest);
    }
    let args = Args::parse(rest).map_err(CliError::from)?;
    if args.flag("help") {
        return Ok(USAGE.to_string());
    }
    let out = match cmd.as_str() {
        "run" => cmd_run(&args),
        "serve" => args
            .check_known(&allowed(serve::SERVE_OPTS))
            .and_then(|()| serve::cmd_serve(&args)),
        "recommend" => cmd_recommend(&args),
        "sweep" => cmd_sweep(&args),
        "trace" => cmd_trace(&args),
        "generate" => cmd_generate(&args),
        other => Err(ArgError::Unexpected(other.to_string())),
    };
    out.map_err(CliError::from)
}

/// `iawj bench-diff <old.json> <new.json>` — compare two bench snapshots
/// and fail (non-zero exit) when a matching configuration regressed past
/// the thresholds, unless `--warn-only`.
fn cmd_bench_diff(rest: &[String]) -> Result<String, CliError> {
    if rest.first().map(|t| t.as_str()) == Some("--help") {
        return Ok(USAGE.to_string());
    }
    let positional: Vec<&String> = rest.iter().take_while(|t| !t.starts_with("--")).collect();
    if positional.len() != 2 {
        return Err("bench-diff takes exactly two snapshot paths: <old.json> <new.json>".into());
    }
    let args = Args::parse(&rest[2..]).map_err(CliError::from)?;
    args.check_known(&["max-tpt-drop", "max-p99-rise", "warn-only", "help"])?;
    if args.flag("help") {
        return Ok(USAGE.to_string());
    }
    let defaults = DiffThresholds::default();
    let thresholds = DiffThresholds {
        max_tpt_drop: args.get_or("max-tpt-drop", defaults.max_tpt_drop)?,
        max_p99_rise: args.get_or("max-p99-rise", defaults.max_p99_rise)?,
    };
    let load = |path: &str| -> Result<BenchSnapshot, CliError> {
        let text = std::fs::read_to_string(path).map_err(|e| CliError {
            message: format!("{path}: {e}"),
            show_usage: false,
        })?;
        BenchSnapshot::parse(&text).map_err(|e| CliError {
            message: format!("{path}: {e}"),
            show_usage: false,
        })
    };
    let old = load(positional[0])?;
    let new = load(positional[1])?;
    let report = diff(&old, &new, thresholds);
    let rendered = report.render();
    if report.regressed() && !args.flag("warn-only") {
        Err(CliError {
            message: rendered,
            show_usage: false,
        })
    } else {
        Ok(rendered)
    }
}

fn allowed(extra: &[&str]) -> Vec<&'static str> {
    let mut v: Vec<&str> = Vec::new();
    v.extend_from_slice(WORKLOAD_OPTS);
    v.extend_from_slice(RUN_OPTS);
    v.push("algo");
    // Leak is fine: a handful of static strings per process.
    v.extend_from_slice(extra);
    v.iter()
        .map(|s| -> &'static str { Box::leak(s.to_string().into_boxed_str()) })
        .collect()
}

fn cmd_run(args: &Args) -> Result<String, ArgError> {
    args.check_known(&allowed(&[]))?;
    let algo = parse_algorithm(args)?;
    let ds = build_dataset(args)?;
    let cfg = build_config(args)?;
    let result = execute(algo, &ds, &cfg);
    let summary = RunSummary::from_result(&result).with_kernel(cfg.kernel.backend.label());
    let save = |key: &'static str, content: String| -> Result<(), ArgError> {
        if let Some(path) = args.get(key) {
            std::fs::write(path, content).map_err(|e| ArgError::Invalid {
                key: key.into(),
                value: format!("{path}: {e}"),
                expected: "a writable path",
            })?;
        }
        Ok(())
    };
    save("trace-out", result.chrome_trace())?;
    save("metrics-out", metrics_jsonl(&summary, &result))?;
    Ok(if args.flag("json") {
        summary.to_json()
    } else {
        summary.to_text()
    })
}

fn cmd_recommend(args: &Args) -> Result<String, ArgError> {
    args.check_known(&allowed(&["objective", "calibrate", "cores"]))?;
    let ds = build_dataset(args)?;
    // Calibration bands scale with the cores this process can actually
    // run on — the affinity-mask cardinality, not the machine.
    let cores: usize = args.get_or("cores", iawj_exec::affinity_core_count().max(1))?;
    let objective = match args.get_or("objective", "throughput".to_string())?.as_str() {
        "throughput" => Objective::Throughput,
        "latency" => Objective::Latency,
        "progressiveness" => Objective::Progressiveness,
        other => {
            return Err(ArgError::Invalid {
                key: "objective".into(),
                value: other.into(),
                expected: "throughput|latency|progressiveness",
            })
        }
    };
    let thresholds = if args.flag("calibrate") {
        calibrate(cores)
    } else {
        Thresholds::default()
    };
    let descriptor = sniff(&ds, 0.05, cores);
    let pick = recommend(&descriptor, objective, &thresholds);
    Ok(format!(
        "workload: rate_r={} rate_s={} dupe={:.1} skew_key={:.2} tuples={}\n\
         bands: low<{:.0} t/ms, high>={:.0} t/ms\n\
         recommendation ({objective:?}): {pick}",
        descriptor.rate_r,
        descriptor.rate_s,
        descriptor.dupe,
        descriptor.skew_key,
        descriptor.total_tuples,
        thresholds.rate_low,
        thresholds.rate_high,
    ))
}

fn cmd_sweep(args: &Args) -> Result<String, ArgError> {
    args.check_known(&allowed(&["param", "values"]))?;
    let algo = parse_algorithm(args)?;
    let param: String = args.require("param")?;
    let values: Vec<f64> = args.list("values")?;
    let cfg = build_config(args)?;
    let mut out = format!(
        "{:>10}  {:>12}  {:>12}  {:>10}\n",
        param, "tpt (t/ms)", "p95 (ms)", "matches"
    );
    for &v in &values {
        // Rebuild the workload with the swept parameter overridden.
        let ds = build_dataset_with_override(args, &param, v)?;
        let result = execute(algo, &ds, &cfg);
        let summary = RunSummary::from_result(&result).with_kernel(cfg.kernel.backend.label());
        out.push_str(&format!(
            "{v:>10}  {:>12.1}  {:>12}  {:>10}\n",
            summary.throughput_tpms,
            summary
                .latency_p95_ms
                .map(|l| format!("{l:.1}"))
                .unwrap_or_else(|| "-".into()),
            summary.matches,
        ));
    }
    Ok(out)
}

/// Build the dataset with one Micro parameter replaced by the sweep value.
fn build_dataset_with_override(
    args: &Args,
    param: &str,
    value: f64,
) -> Result<iawj_datagen::Dataset, ArgError> {
    use iawj_datagen::MicroSpec;
    let base = MicroSpec {
        rate_r: args.get_or("rate-r", 1600.0)?,
        rate_s: args.get_or("rate-s", 1600.0)?,
        window_ms: args.get_or("window", 1000)?,
        dupe: args.get_or("dupe", 1usize)?.max(1),
        skew_key: args.get_or("skew-key", 0.0)?,
        skew_ts: args.get_or("skew-ts", 0.0)?,
        static_data: args.flag("static"),
        count_r: None,
        count_s: None,
        seed: args.get_or("seed", 42)?,
    };
    let spec = match param {
        "rate" => MicroSpec {
            rate_r: value,
            rate_s: value,
            ..base
        },
        "dupe" => MicroSpec {
            dupe: (value as usize).max(1),
            ..base
        },
        "skew-key" => MicroSpec {
            skew_key: value,
            ..base
        },
        "skew-ts" => MicroSpec {
            skew_ts: value,
            ..base
        },
        "window" => MicroSpec {
            window_ms: value as u32,
            ..base
        },
        other => {
            return Err(ArgError::Invalid {
                key: "param".into(),
                value: other.into(),
                expected: "rate|dupe|skew-key|skew-ts|window",
            })
        }
    };
    let mut spec = spec;
    if spec.static_data {
        spec.count_r = Some(spec.n_r());
        spec.count_s = Some(spec.n_s());
    }
    Ok(spec.generate())
}

fn cmd_trace(args: &Args) -> Result<String, ArgError> {
    args.check_known(&allowed(&[]))?;
    let algo = parse_algorithm(args)?;
    let ds = build_dataset(args)?;
    let cfg = build_config(args)?;
    let profile = trace::profile(algo, &ds, &cfg);
    let per = profile.per_tuple();
    let est = profile.estimate(&iawj_cachesim::CostModel::default());
    let (retiring, core, memory) = est.percentages();
    let mut out = format!(
        "algorithm: {}\ntuples: {}\nsimulated misses per tuple: dTLB {:.3}  L1D {:.3}  L2 {:.3}  L3 {:.3}\n",
        profile.algorithm, profile.tuples, per.dtlb, per.l1d, per.l2, per.l3
    );
    out.push_str(&format!(
        "top-down estimate: retiring {retiring:.1}%  core-bound {core:.1}%  memory-bound {memory:.1}%\n"
    ));
    for (phase, counters) in &profile.per_phase {
        out.push_str(&format!(
            "  {phase:<12} accesses {:>10}  L1D {:>8}  L2 {:>7}  L3 {:>7}\n",
            counters.accesses, counters.l1d_misses, counters.l2_misses, counters.l3_misses
        ));
    }
    Ok(out)
}

fn cmd_generate(args: &Args) -> Result<String, ArgError> {
    args.check_known(&allowed(&["out-r", "out-s"]))?;
    let ds = build_dataset(args)?;
    let save = |key: &'static str, stream: &[iawj_common::Tuple]| -> Result<String, ArgError> {
        let path: String = args.require(key)?;
        iawj_datagen::io::save_stream(stream, &path).map_err(|e| ArgError::Invalid {
            key: key.into(),
            value: format!("{path}: {e}"),
            expected: "a writable path",
        })?;
        Ok(path)
    };
    let pr = save("out-r", &ds.r)?;
    let ps = save("out-s", &ds.s)?;
    Ok(format!(
        "wrote {} tuples to {pr} and {} tuples to {ps}",
        ds.r.len(),
        ds.s.len()
    ))
}

/// Convenience for tests: run with &str arguments, errors as plain text.
pub fn run_cli_str(argv: &[&str]) -> Result<String, String> {
    let owned: Vec<String> = argv.iter().map(|s| s.to_string()).collect();
    run_cli(&owned).map_err(|e| e.message)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn help_works() {
        assert!(run_cli_str(&["help"]).unwrap().contains("USAGE"));
        assert!(run_cli_str(&["run", "--help"]).unwrap().contains("USAGE"));
    }

    #[test]
    fn missing_subcommand_errors() {
        assert!(run_cli(&[]).is_err());
        assert!(run_cli_str(&["frobnicate"]).is_err());
    }

    #[test]
    fn run_text_output() {
        let out = run_cli_str(&[
            "run",
            "--algo",
            "NPJ",
            "--static",
            "--count-r",
            "500",
            "--count-s",
            "500",
            "--dupe",
            "5",
            "--threads",
            "2",
        ])
        .unwrap();
        assert!(out.contains("algorithm:     NPJ"), "{out}");
        assert!(out.contains("matches:       2500"), "{out}");
    }

    #[test]
    fn run_with_lockfree_npj_table() {
        let out = run_cli_str(&[
            "run",
            "--algo",
            "NPJ",
            "--static",
            "--count-r",
            "500",
            "--count-s",
            "500",
            "--dupe",
            "5",
            "--threads",
            "2",
            "--npj-table",
            "lockfree",
        ])
        .unwrap();
        assert!(out.contains("matches:       2500"), "{out}");
    }

    #[test]
    fn serve_runs_a_short_stream() {
        let out = run_cli_str(&[
            "serve",
            "--algo",
            "NPJ",
            "--window-spec",
            "tumbling:100",
            "--duration-ms",
            "400",
            "--rate-r",
            "20",
            "--rate-s",
            "20",
            "--speedup",
            "200",
            "--threads",
            "1",
        ])
        .unwrap();
        assert!(out.contains("engine:        NPJ"), "{out}");
        assert!(out.contains("window spec:   tumbling:100"), "{out}");
        assert!(out.contains("windows:       4 closed"), "{out}");
    }

    #[test]
    fn serve_json_summary_parses() {
        let out = run_cli_str(&[
            "serve",
            "--algo",
            "SHJ_JM",
            "--window-spec",
            "sliding:100/50",
            "--duration-ms",
            "300",
            "--rate-r",
            "10",
            "--rate-s",
            "10",
            "--speedup",
            "300",
            "--threads",
            "1",
            "--json",
        ])
        .unwrap();
        let j = iawj_obs::json::Json::parse(&out).expect("summary is valid JSON");
        assert_eq!(
            j.get("type").and_then(iawj_obs::json::Json::as_str),
            Some("stream_summary")
        );
        assert_eq!(
            j.get("window_spec").and_then(iawj_obs::json::Json::as_str),
            Some("sliding:100/50")
        );
        assert!(j
            .get("matches")
            .and_then(iawj_obs::json::Json::as_u64)
            .is_some());
    }

    #[test]
    fn serve_rejects_bad_window_spec() {
        for bad in [
            "hopping:10",
            "tumbling:0",
            "sliding:100",
            "sliding:0/10",
            "",
        ] {
            let err = run_cli_str(&["serve", "--algo", "NPJ", "--window-spec", bad]).unwrap_err();
            assert!(err.contains("window-spec"), "{bad}: {err}");
        }
    }

    #[test]
    fn serve_rejects_nonpositive_speedup() {
        for bad in ["0", "-1", "NaN", "inf"] {
            let err = run_cli_str(&["serve", "--algo", "NPJ", "--speedup", bad]).unwrap_err();
            assert!(err.contains("speedup"), "{bad}: {err}");
        }
    }

    #[test]
    fn serve_rejects_nonpositive_tick_ms() {
        for bad in ["0", "-5", "NaN"] {
            let err = run_cli_str(&["serve", "--algo", "NPJ", "--tick-ms", bad]).unwrap_err();
            assert!(err.contains("tick-ms"), "{bad}: {err}");
        }
    }

    #[test]
    fn serve_rejects_nonpositive_rate_r() {
        for bad in ["0", "-100", "NaN"] {
            let err = run_cli_str(&["serve", "--algo", "NPJ", "--rate-r", bad]).unwrap_err();
            assert!(err.contains("rate-r"), "{bad}: {err}");
        }
    }

    #[test]
    fn serve_rejects_nonpositive_rate_s() {
        for bad in ["0", "-0.5", "NaN"] {
            let err = run_cli_str(&["serve", "--algo", "NPJ", "--rate-s", bad]).unwrap_err();
            assert!(err.contains("rate-s"), "{bad}: {err}");
        }
    }

    #[test]
    fn unknown_npj_table_mode_is_rejected() {
        let err = run_cli_str(&[
            "run",
            "--algo",
            "NPJ",
            "--static",
            "--count-r",
            "100",
            "--count-s",
            "100",
            "--npj-table",
            "mutex",
        ])
        .unwrap_err();
        assert!(err.contains("npj-table"), "{err}");
        assert!(err.contains("latch|lockfree"), "{err}");
    }

    #[test]
    fn run_json_output() {
        let out = run_cli_str(&[
            "run",
            "--algo",
            "PMJ_JB",
            "--static",
            "--count-r",
            "300",
            "--count-s",
            "300",
            "--json",
            "--threads",
            "2",
        ])
        .unwrap();
        let v = iawj_obs::json::Json::parse(&out).unwrap();
        assert_eq!(v.get("algorithm").and_then(|a| a.as_str()), Some("PMJ_JB"));
    }

    #[test]
    fn run_writes_trace_and_metrics_files() {
        use iawj_obs::json::Json;
        let dir = std::env::temp_dir().join("iawj_cli_obs");
        std::fs::create_dir_all(&dir).unwrap();
        let trace = dir.join("t.json");
        let metrics = dir.join("m.jsonl");
        run_cli_str(&[
            "run",
            "--algo",
            "PRJ",
            "--static",
            "--count-r",
            "2000",
            "--count-s",
            "2000",
            "--dupe",
            "4",
            "--threads",
            "4",
            "--sample-every",
            "1",
            "--trace-out",
            trace.to_str().unwrap(),
            "--metrics-out",
            metrics.to_str().unwrap(),
        ])
        .unwrap();
        // The trace parses and has one named lane per worker.
        let doc = Json::parse(&std::fs::read_to_string(&trace).unwrap()).unwrap();
        let events = doc.get("traceEvents").and_then(Json::as_arr).unwrap();
        let lanes: std::collections::BTreeSet<u64> = events
            .iter()
            .filter_map(|e| e.get("tid").and_then(Json::as_u64))
            .collect();
        assert_eq!(lanes.len(), 4, "one lane per worker");
        assert!(events
            .iter()
            .any(|e| e.get("ph").and_then(Json::as_str) == Some("X")));
        // The metrics journal parses line by line and carries a histogram.
        let jsonl = std::fs::read_to_string(&metrics).unwrap();
        let hist_line = jsonl
            .lines()
            .map(|l| Json::parse(l).unwrap())
            .find(|v| v.get("type").and_then(Json::as_str) == Some("histogram"))
            .expect("histogram line present");
        assert!(hist_line.get("count").and_then(Json::as_u64).unwrap() > 0);
        std::fs::remove_file(trace).unwrap();
        std::fs::remove_file(metrics).unwrap();
    }

    #[test]
    fn recommend_paths() {
        let out = run_cli_str(&[
            "recommend",
            "--static",
            "--count-r",
            "2000",
            "--count-s",
            "2000",
            "--dupe",
            "50",
        ])
        .unwrap();
        assert!(out.contains("recommendation"), "{out}");
        assert!(out.contains("MPASS") || out.contains("MWAY"), "{out}");
        let out = run_cli_str(&[
            "recommend",
            "--rate-r",
            "5",
            "--rate-s",
            "5",
            "--window",
            "100",
            "--objective",
            "latency",
        ])
        .unwrap();
        assert!(out.contains("SHJ_JM"), "{out}");
    }

    #[test]
    fn sweep_prints_one_row_per_value() {
        let out = run_cli_str(&[
            "sweep",
            "--algo",
            "NPJ",
            "--param",
            "dupe",
            "--values",
            "1,5",
            "--static",
            "--rate-r",
            "3",
            "--rate-s",
            "3",
            "--window",
            "100",
            "--threads",
            "2",
        ])
        .unwrap();
        let rows: Vec<&str> = out.lines().collect();
        assert_eq!(rows.len(), 3, "{out}"); // header + 2 values
    }

    #[test]
    fn trace_reports_counters() {
        let out = run_cli_str(&[
            "trace",
            "--algo",
            "SHJ_JM",
            "--static",
            "--count-r",
            "2000",
            "--count-s",
            "2000",
            "--threads",
            "2",
        ])
        .unwrap();
        assert!(out.contains("misses per tuple"), "{out}");
        assert!(out.contains("memory-bound"), "{out}");
    }

    #[test]
    fn generate_then_run_from_csv() {
        let dir = std::env::temp_dir().join("iawj_cli_csv");
        std::fs::create_dir_all(&dir).unwrap();
        let pr = dir.join("r.csv");
        let ps = dir.join("s.csv");
        let out = run_cli_str(&[
            "generate",
            "--static",
            "--count-r",
            "200",
            "--count-s",
            "200",
            "--dupe",
            "4",
            "--out-r",
            pr.to_str().unwrap(),
            "--out-s",
            ps.to_str().unwrap(),
        ])
        .unwrap();
        assert!(out.contains("wrote 200 tuples"), "{out}");
        let out = run_cli_str(&[
            "run",
            "--algo",
            "MWAY",
            "--threads",
            "2",
            "--input-r",
            pr.to_str().unwrap(),
            "--input-s",
            ps.to_str().unwrap(),
        ])
        .unwrap();
        assert!(
            out.contains("matches:       800"),
            "4 dupes each side over 50 keys: {out}"
        );
        std::fs::remove_file(pr).unwrap();
        std::fs::remove_file(ps).unwrap();
    }

    #[test]
    fn unknown_option_is_reported() {
        let err = run_cli_str(&["run", "--algo", "NPJ", "--bogus", "1"]).unwrap_err();
        assert!(err.contains("bogus"), "{err}");
    }

    #[test]
    fn run_with_perf_flag_never_panics() {
        // On hosts without perf_event access this exercises the fallback.
        let out = run_cli_str(&[
            "run",
            "--algo",
            "NPJ",
            "--static",
            "--count-r",
            "300",
            "--count-s",
            "300",
            "--threads",
            "2",
            "--perf",
        ])
        .unwrap();
        assert!(out.contains("throughput:"), "{out}");
    }

    fn snapshot_fixture(tpt: f64, p99: f64) -> iawj_obs::BenchSnapshot {
        iawj_obs::BenchSnapshot {
            schema_version: iawj_obs::SCHEMA_VERSION,
            fig: "fig7".into(),
            git_sha: "deadbeef".into(),
            created_unix_s: 1,
            scale: 0.01,
            speedup: 25.0,
            threads: 4,
            clock_ghz: 2.6,
            clock_source: "assumed".into(),
            runs: vec![iawj_obs::RunSnapshot {
                workload: "Micro".into(),
                engine: "NPJ".into(),
                threads: 4,
                scheduler: "static".into(),
                scatter: "direct".into(),
                npj_table: "latch".into(),
                kernel: "simd".into(),
                throughput_tpms: tpt,
                latency_p99_ms: Some(p99),
                latency_max_ms: Some(p99 * 2.0),
                matches: 1000,
                counter_source: "none".into(),
                phases: vec![],
                cachesim: None,
            }],
        }
    }

    fn write_snapshot(name: &str, snap: &iawj_obs::BenchSnapshot) -> String {
        let dir = std::env::temp_dir().join("iawj_cli_benchdiff");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(name);
        std::fs::write(&path, snap.to_json()).unwrap();
        path.to_str().unwrap().to_string()
    }

    #[test]
    fn bench_diff_passes_on_identical_snapshots() {
        let old = write_snapshot("same_a.json", &snapshot_fixture(100.0, 5.0));
        let new = write_snapshot("same_b.json", &snapshot_fixture(100.0, 5.0));
        let out = run_cli_str(&["bench-diff", &old, &new]).unwrap();
        assert!(out.contains("OK"), "{out}");
    }

    #[test]
    fn bench_diff_fails_on_throughput_regression() {
        let old = write_snapshot("reg_old.json", &snapshot_fixture(100.0, 5.0));
        // 25% throughput drop: past the default 20% threshold.
        let new = write_snapshot("reg_new.json", &snapshot_fixture(75.0, 5.0));
        let argv: Vec<String> = ["bench-diff", &old, &new]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let err = run_cli(&argv).unwrap_err();
        assert!(!err.show_usage, "a regression report is not a usage error");
        assert!(err.message.contains("FAIL"), "{}", err.message);
        // The same pair passes with --warn-only or a wider threshold.
        let out = run_cli_str(&["bench-diff", &old, &new, "--warn-only"]).unwrap();
        assert!(out.contains("FAIL"), "{out}");
        run_cli_str(&["bench-diff", &old, &new, "--max-tpt-drop", "0.3"]).unwrap();
    }

    #[test]
    fn bench_diff_wants_two_paths_and_real_files() {
        let argv = vec!["bench-diff".to_string()];
        let err = run_cli(&argv).unwrap_err();
        assert!(err.show_usage);
        assert!(
            err.message.contains("two snapshot paths"),
            "{}",
            err.message
        );
        let err =
            run_cli_str(&["bench-diff", "/nonexistent/a.json", "/nonexistent/b.json"]).unwrap_err();
        assert!(err.contains("nonexistent"), "{err}");
    }

    #[test]
    fn bad_algorithm_is_reported() {
        let err = run_cli_str(&["run", "--algo", "BLOOM"]).unwrap_err();
        assert!(err.contains("algo"), "{err}");
    }
}
