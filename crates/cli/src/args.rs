//! A small `--key value` argument parser. Hand-rolled: the whole grammar
//! is flat key-value pairs plus one leading subcommand, which does not
//! justify an argument-parsing dependency.

use std::collections::BTreeMap;
use std::fmt;

/// Parsed command line: subcommand plus `--key value` options.
#[derive(Debug, Default, Clone)]
pub struct Args {
    opts: BTreeMap<String, String>,
    flags: Vec<String>,
}

/// Argument errors, with the offending token.
#[derive(Debug, PartialEq, Eq)]
pub enum ArgError {
    /// An option appeared twice.
    Duplicate(String),
    /// A bare value with no preceding `--key`.
    Unexpected(String),
    /// An option's value failed to parse.
    Invalid {
        /// The option name (without `--`).
        key: String,
        /// The offending value.
        value: String,
        /// What a valid value looks like.
        expected: &'static str,
    },
    /// A required option was not supplied.
    Missing(&'static str),
    /// Unknown option for this subcommand.
    Unknown(String),
}

impl fmt::Display for ArgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ArgError::Duplicate(k) => write!(f, "option --{k} given twice"),
            ArgError::Unexpected(v) => write!(f, "unexpected argument '{v}'"),
            ArgError::Invalid {
                key,
                value,
                expected,
            } => {
                write!(f, "--{key} {value}: expected {expected}")
            }
            ArgError::Missing(k) => write!(f, "missing required option --{k}"),
            ArgError::Unknown(k) => write!(f, "unknown option --{k}"),
        }
    }
}

impl std::error::Error for ArgError {}

/// Options that take no value.
const FLAG_NAMES: &[&str] = &[
    "static",
    "json",
    "calibrate",
    "scalar-sort",
    "eager-merge",
    "perf",
    "no-share",
    "warn-only",
    "help",
];

impl Args {
    /// Parse everything after the subcommand.
    pub fn parse(tokens: &[String]) -> Result<Args, ArgError> {
        let mut args = Args::default();
        let mut iter = tokens.iter().peekable();
        while let Some(tok) = iter.next() {
            let Some(key) = tok.strip_prefix("--") else {
                return Err(ArgError::Unexpected(tok.clone()));
            };
            if FLAG_NAMES.contains(&key) {
                args.flags.push(key.to_string());
                continue;
            }
            let value = iter
                .next()
                .ok_or_else(|| ArgError::Invalid {
                    key: key.to_string(),
                    value: "<none>".into(),
                    expected: "a value",
                })?
                .clone();
            if args.opts.insert(key.to_string(), value).is_some() {
                return Err(ArgError::Duplicate(key.to_string()));
            }
        }
        Ok(args)
    }

    /// Is a no-value flag present?
    pub fn flag(&self, name: &str) -> bool {
        self.flags.iter().any(|f| f == name)
    }

    /// Raw option value.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.opts.get(key).map(|s| s.as_str())
    }

    /// Typed option with a default.
    pub fn get_or<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, ArgError> {
        match self.opts.get(key) {
            None => Ok(default),
            Some(v) => v.parse().map_err(|_| ArgError::Invalid {
                key: key.to_string(),
                value: v.clone(),
                expected: std::any::type_name::<T>(),
            }),
        }
    }

    /// Required typed option.
    pub fn require<T: std::str::FromStr>(&self, key: &'static str) -> Result<T, ArgError> {
        let v = self.opts.get(key).ok_or(ArgError::Missing(key))?;
        v.parse().map_err(|_| ArgError::Invalid {
            key: key.to_string(),
            value: v.clone(),
            expected: std::any::type_name::<T>(),
        })
    }

    /// Comma-separated list of typed values.
    pub fn list<T: std::str::FromStr>(&self, key: &'static str) -> Result<Vec<T>, ArgError> {
        let raw: String = self.require(key)?;
        raw.split(',')
            .map(|p| {
                p.trim().parse().map_err(|_| ArgError::Invalid {
                    key: key.to_string(),
                    value: p.to_string(),
                    expected: "a comma-separated list",
                })
            })
            .collect()
    }

    /// Reject any option not in `allowed` (flags are checked too).
    pub fn check_known(&self, allowed: &[&str]) -> Result<(), ArgError> {
        for key in self.opts.keys() {
            if !allowed.contains(&key.as_str()) {
                return Err(ArgError::Unknown(key.clone()));
            }
        }
        for flag in &self.flags {
            if !allowed.contains(&flag.as_str()) {
                return Err(ArgError::Unknown(flag.clone()));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }

    #[test]
    fn parses_pairs_and_flags() {
        let a = Args::parse(&toks("--algo NPJ --threads 4 --json")).unwrap();
        assert_eq!(a.get("algo"), Some("NPJ"));
        assert_eq!(a.get_or("threads", 1usize).unwrap(), 4);
        assert!(a.flag("json"));
        assert!(!a.flag("static"));
    }

    #[test]
    fn rejects_bare_values() {
        assert_eq!(
            Args::parse(&toks("NPJ")).unwrap_err(),
            ArgError::Unexpected("NPJ".into())
        );
    }

    #[test]
    fn rejects_duplicates() {
        assert_eq!(
            Args::parse(&toks("--algo NPJ --algo PRJ")).unwrap_err(),
            ArgError::Duplicate("algo".into())
        );
    }

    #[test]
    fn missing_value_is_an_error() {
        assert!(Args::parse(&toks("--threads")).is_err());
    }

    #[test]
    fn typed_accessors() {
        let a = Args::parse(&toks("--rate-r 61.5 --values 1,2,3")).unwrap();
        assert_eq!(a.get_or("rate-r", 0.0f64).unwrap(), 61.5);
        assert_eq!(a.list::<u32>("values").unwrap(), vec![1, 2, 3]);
        assert_eq!(
            a.require::<f64>("absent").unwrap_err(),
            ArgError::Missing("absent")
        );
        assert!(
            a.get_or::<usize>("rate-r", 0).is_err(),
            "61.5 is not a usize"
        );
    }

    #[test]
    fn unknown_option_detection() {
        let a = Args::parse(&toks("--algo NPJ --bogus 1")).unwrap();
        assert_eq!(
            a.check_known(&["algo"]).unwrap_err(),
            ArgError::Unknown("bogus".into())
        );
        assert!(a.check_known(&["algo", "bogus"]).is_ok());
    }
}
