#![warn(missing_docs)]

//! # iawj-study
//!
//! A from-scratch Rust reproduction of *"Parallelizing Intra-Window Join on
//! Multicores: An Experimental Study"* (Zhang et al., SIGMOD 2021).
//!
//! This facade crate re-exports the whole workspace so applications can
//! depend on a single crate:
//!
//! - [`common`] — tuples, windows, deterministic RNG/Zipf, hashing, sinks.
//! - [`cachesim`] — the software cache-hierarchy simulator standing in for
//!   hardware performance counters.
//! - [`exec`] — parallel runtime and the shared kernels (radix partitioning,
//!   sorting backends, merging, hash tables, merge-join).
//! - [`datagen`] — the Micro synthetic workload plus Stock / Rovio / YSB /
//!   DEBS real-world-equivalent generators.
//! - [`core`] — the eight intra-window-join algorithms, the stream
//!   distribution schemes, the event clock, metrics, and the Figure 4
//!   decision tree.
//!
//! See `README.md` for a quickstart and `DESIGN.md` for the full system
//! inventory.
//!
//! ```
//! use iawj_study::core::{execute, Algorithm, RunConfig};
//! use iawj_study::datagen::MicroSpec;
//!
//! let dataset = MicroSpec::static_counts(500, 500).dupe(5).generate();
//! let result = execute(Algorithm::MPass, &dataset, &RunConfig::with_threads(2));
//! assert_eq!(result.matches, 100 * 5 * 5);
//! ```

pub use iawj_cachesim as cachesim;
pub use iawj_common as common;
pub use iawj_core as core;
pub use iawj_datagen as datagen;
pub use iawj_exec as exec;
pub use iawj_obs as obs;

/// Crate version of the study facade.
pub const VERSION: &str = env!("CARGO_PKG_VERSION");
