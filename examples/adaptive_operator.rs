//! The adaptive IaWJ operator (the paper's §7 future-work direction (i),
//! built in `iawj_core::adaptive`): sniff a prefix of each stream, estimate
//! the workload characteristics, calibrate the rate bands to this host,
//! and let the Figure 4 decision tree dispatch — one operator that is never
//! far from the per-region winner.
//!
//! Run with: `cargo run --release --example adaptive_operator`

use iawj_study::core::adaptive::execute_adaptive_with;
use iawj_study::core::decision::{calibrate, Objective};
use iawj_study::core::{execute, Algorithm, RunConfig};
use iawj_study::datagen::MicroSpec;

fn main() {
    let threads = 4;
    let thresholds = calibrate(threads);
    println!(
        "host calibration: low < {:.0} t/ms <= medium < {:.0} t/ms <= high",
        thresholds.rate_low, thresholds.rate_high
    );

    // Three workloads from different regions of the decision space.
    let scenarios = [
        ("slow sensors", MicroSpec::with_rates(20.0, 20.0).seed(1)),
        (
            "bursty dedup feed",
            MicroSpec::static_counts(40_000, 40_000).dupe(80).seed(2),
        ),
        (
            "unique-key firehose",
            MicroSpec::static_counts(120_000, 120_000).seed(3),
        ),
    ];

    for (label, spec) in scenarios {
        let dataset = spec.generate();
        let cfg = RunConfig::with_threads(threads).speedup(100.0);
        let outcome =
            execute_adaptive_with(&dataset, &cfg, Objective::Throughput, &thresholds, 0.05);
        println!(
            "\n{label}: sniffed rate_r={} dupe={:.1} -> picked {}",
            outcome.descriptor.rate_r, outcome.descriptor.dupe, outcome.chosen
        );
        println!(
            "  adaptive: {:>9.0} t/ms  ({} matches)",
            outcome.result.throughput_tpms(),
            outcome.result.matches
        );
        // How far from the best fixed choice?
        let mut best = (Algorithm::Npj, 0.0f64);
        for algo in Algorithm::STUDIED {
            let r = execute(algo, &dataset, &cfg);
            let tpt = r.throughput_tpms();
            if tpt > best.1 {
                best = (algo, tpt);
            }
        }
        println!("  best fixed: {:>7.0} t/ms  ({})", best.1, best.0);
    }
}
