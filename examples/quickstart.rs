//! Quickstart: generate a workload, ask the decision tree for an
//! algorithm, run the join, and read the three metrics.
//!
//! Run with: `cargo run --release --example quickstart`

use iawj_study::core::decision::{recommend_default, Objective, Workload};
use iawj_study::core::metrics::{latency_quantile_ms, progressiveness};
use iawj_study::core::{execute, RunConfig};
use iawj_study::datagen::MicroSpec;

fn main() {
    // A medium-rate synthetic workload: 2 x 200 tuples/ms over a 1-second
    // window, every key duplicated 10 times.
    let spec = MicroSpec::with_rates(200.0, 200.0).dupe(10).seed(7);
    let dataset = spec.generate();
    println!(
        "workload: |R|={} |S|={} keys={} window={}ms",
        dataset.r.len(),
        dataset.s.len(),
        spec.key_domain(),
        dataset.window.len_ms
    );

    // Ask the Figure 4 decision tree what to run.
    let descriptor = Workload {
        rate_r: dataset.rate_r,
        rate_s: dataset.rate_s,
        dupe: 20.0,
        skew_key: 0.0,
        total_tuples: dataset.total_inputs(),
        // The cores this process may actually use (affinity mask), not the
        // machine's count — under taskset/cgroups they differ.
        cores: iawj_study::exec::affinity_core_count().max(1),
    };
    let algorithm = recommend_default(&descriptor, Objective::Throughput);
    println!("decision tree picks: {algorithm}");

    // Run it. speedup(50) replays the 1 s window in 20 ms of wall time;
    // all reported times stay in stream milliseconds.
    let cfg = RunConfig::with_threads(4).speedup(50.0);
    let result = execute(algorithm, &dataset, &cfg);

    println!("matches:      {}", result.matches);
    println!("throughput:   {:.0} tuples/ms", result.throughput_tpms());
    if let Some(p95) = latency_quantile_ms(&result, 0.95) {
        println!("p95 latency:  {p95:.1} ms");
    }
    let curve = progressiveness(&result);
    if let Some(&(t, _)) = curve.iter().find(|&&(_, f)| f >= 0.5) {
        println!("50% of matches delivered by {t:.0} ms (stream time)");
    }
}
