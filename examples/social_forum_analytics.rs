//! The DEBS 2016 scenario (§4.2.1): posts (R) joined with comments (S) on
//! user id — both datasets at rest, i.e. a zero-length window with
//! infinite arrival rate. For data at rest the paper finds the lazy,
//! sort-based algorithms dominate (high key duplication per user); this
//! example races all eight and checks the decision tree agrees.
//!
//! Run with: `cargo run --release --example social_forum_analytics`

use iawj_study::core::decision::{recommend_default, Objective, Workload};
use iawj_study::core::{execute, Algorithm, RunConfig};
use iawj_study::datagen::debs;
use iawj_study::datagen::stats::WorkloadStats;

fn main() {
    // 10% of the DEBS cardinalities: 10k posts, 100k comments, ~900 users.
    let dataset = debs(0.1, 1);
    let stats = WorkloadStats::measure(&dataset);
    println!(
        "posts: {} by {} users (dupe {:.0}); comments: {} (dupe {:.0})",
        stats.r.count, stats.r.distinct_keys, stats.r.dupe_avg, stats.s.count, stats.s.dupe_avg
    );

    let cfg = RunConfig::with_threads(4);
    let mut best: Option<(Algorithm, f64)> = None;
    println!("\n{:<8} {:>12} {:>10}", "algo", "tpt (t/ms)", "matches");
    for algo in Algorithm::STUDIED {
        let result = execute(algo, &dataset, &cfg);
        let tpt = result.throughput_tpms();
        println!("{:<8} {:>12.0} {:>10}", algo.name(), tpt, result.matches);
        if best.is_none_or(|(_, b)| tpt > b) {
            best = Some((algo, tpt));
        }
    }
    let (winner, tpt) = best.expect("eight runs");
    println!("\nfastest: {winner} at {tpt:.0} tuples/ms");

    let pick = recommend_default(
        &Workload {
            rate_r: dataset.rate_r,
            rate_s: dataset.rate_s,
            dupe: stats.s.dupe_avg,
            skew_key: stats.s.skew_key_est,
            total_tuples: dataset.total_inputs(),
            cores: 8,
        },
        Objective::Throughput,
    );
    println!("decision tree picks: {pick} (a lazy sort-based algorithm)");
    assert!(pick.is_lazy() && pick.is_sort_based());
}
