//! Continuous operation: the intra-window join deployed as a long-running
//! service (§2 of the paper notes IaWJ composes under any window type;
//! `iawj_core::streaming` provides that layer as an operator).
//!
//! The scenario: a clickstream (R) joined with a purchase stream (S) per
//! user. Both streams are paced against the wall clock and pushed through
//! bounded ingress queues into a [`StreamingJoin`]; the operator closes
//! 250 ms tumbling windows as the watermark advances, printing a dashboard
//! line per window and a metrics tick four times a second. A second pass
//! re-runs the same streams under session windows.
//!
//! Run with: `cargo run --release --example continuous_dashboard`

use iawj_study::common::spsc::stream_channel;
use iawj_study::common::{Rng, Tuple};
use iawj_study::core::streaming::{spawn_source, StreamConfig, StreamingJoin};
use iawj_study::core::windowing::WindowSpec;
use iawj_study::core::{Algorithm, RunConfig};
use iawj_study::datagen::{PacedSource, ReplaySource};

/// Two bursts of activity with a quiet gap — realistic session structure.
fn bursty_stream(seed: u64, users: u32) -> Vec<Tuple> {
    let mut rng = Rng::new(seed);
    let mut out = Vec::new();
    for burst_start in [0u32, 1500] {
        for _ in 0..4000 {
            let ts = burst_start + rng.below(700) as u32;
            out.push(Tuple::new(rng.below(users as u64) as u32, ts));
        }
    }
    out.sort_unstable_by_key(|t| t.ts);
    out
}

/// Pace both streams at `speedup`× real time through capacity-bounded
/// queues and run the operator, printing windows and ticks as they happen.
fn serve(label: &str, cfg: StreamConfig, clicks: &[Tuple], purchases: &[Tuple], speedup: f64) {
    println!("{label}");
    let (tx_r, rx_r) = stream_channel(512);
    let (tx_s, rx_s) = stream_channel(512);
    let h_r = spawn_source(
        PacedSource::new(ReplaySource::new(clicks.to_vec()), speedup),
        tx_r,
    );
    let h_s = spawn_source(
        PacedSource::new(ReplaySource::new(purchases.to_vec()), speedup),
        tx_s,
    );
    let report = StreamingJoin::new(cfg).run(
        rx_r,
        rx_s,
        |w| {
            if w.inputs_r + w.inputs_s > 0 {
                println!(
                    "  [{:>4}..{:>4}) ms: {:>5} inputs -> {:>8} matches{}",
                    w.window.start,
                    w.window.end(),
                    w.inputs_r + w.inputs_s,
                    w.matches,
                    if w.flushed_at_end() { "  (flush)" } else { "" }
                );
            }
        },
        |t| println!("  {}", t.to_text()),
    );
    let _ = h_r.join();
    let _ = h_s.join();
    println!(
        "  done: {} windows, {} matches, {:.1} t/ms ingest, {} backpressure waits, peak queue {}\n",
        report.windows.len(),
        report.matches,
        report.throughput_tpms(),
        report.backpressure_waits,
        report.peak_queue_depth,
    );
}

fn main() {
    let clicks = bursty_stream(1, 500);
    let purchases = bursty_stream(2, 500);
    // 2200 stream-ms at 4x => ~550 ms wall per pass: long enough to watch
    // windows close live, short enough for an example.
    let speedup = 4.0;

    serve(
        "tumbling 250 ms windows (PRJ per window, watermark-driven):",
        StreamConfig::new(WindowSpec::Tumbling { len_ms: 250 }, Algorithm::Prj)
            .run_config(RunConfig::with_threads(4))
            .tick_every_ms(250.0),
        &clicks,
        &purchases,
        speedup,
    );

    serve(
        "session windows (gap >= 300 ms closes a session, MPass per session):",
        StreamConfig::new(WindowSpec::Session { gap_ms: 300 }, Algorithm::MPass)
            .run_config(RunConfig::with_threads(4))
            .tick_every_ms(250.0),
        &clicks,
        &purchases,
        speedup,
    );
}
