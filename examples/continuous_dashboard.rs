//! Continuous operation: the intra-window join as a building block for
//! tumbling- and session-windowed analytics (§2 of the paper notes IaWJ
//! composes under any window type; `iawj_core::windowing` provides that
//! layer).
//!
//! The scenario: a clickstream (R) joined with a purchase stream (S) per
//! user, reported per 250 ms tumbling window and again per activity
//! session.
//!
//! Run with: `cargo run --release --example continuous_dashboard`

use iawj_study::common::{Rng, Tuple};
use iawj_study::core::windowing::{execute_windowed, WindowSpec};
use iawj_study::core::{Algorithm, RunConfig};

/// Two bursts of activity with a quiet gap — realistic session structure.
fn bursty_stream(seed: u64, users: u32) -> Vec<Tuple> {
    let mut rng = Rng::new(seed);
    let mut out = Vec::new();
    for burst_start in [0u32, 1500] {
        for _ in 0..4000 {
            let ts = burst_start + rng.below(700) as u32;
            out.push(Tuple::new(rng.below(users as u64) as u32, ts));
        }
    }
    out.sort_unstable_by_key(|t| t.ts);
    out
}

fn main() {
    let clicks = bursty_stream(1, 500);
    let purchases = bursty_stream(2, 500);
    let cfg = RunConfig::with_threads(4);

    println!("tumbling 250 ms windows (PRJ per window):");
    let windows = execute_windowed(
        Algorithm::Prj,
        &clicks,
        &purchases,
        WindowSpec::Tumbling { len_ms: 250 },
        &cfg,
    );
    for w in &windows {
        if w.result.total_inputs == 0 {
            continue;
        }
        println!(
            "  [{:>4}..{:>4}) ms: {:>6} inputs -> {:>8} matches",
            w.window.start,
            w.window.end(),
            w.result.total_inputs,
            w.result.matches
        );
    }

    println!("\nsession windows (gap >= 300 ms closes a session):");
    let sessions = execute_windowed(
        Algorithm::MPass,
        &clicks,
        &purchases,
        WindowSpec::Session { gap_ms: 300 },
        &cfg,
    );
    for (i, w) in sessions.iter().enumerate() {
        println!(
            "  session {}: [{}..{}) ms, {} inputs, {} matches",
            i + 1,
            w.window.start,
            w.window.end(),
            w.result.total_inputs,
            w.result.matches
        );
    }
    assert_eq!(
        sessions.len(),
        2,
        "the quiet gap must split the data into two sessions"
    );
}
