//! The YSB scenario (§4.2.1): a static campaigns table (R, 1000 unique
//! campaign ids) joined against a high-rate advertisement-event stream
//! (S), as an ad-analytics dashboard would.
//!
//! This example contrasts the two execution approaches on the same input:
//! the lazy NPJ (buffer the window, then join at full speed) against the
//! eager SHJ^JM (join every event on arrival) — the throughput-vs-latency
//! trade-off at the heart of the paper's §5.2.
//!
//! Run with: `cargo run --release --example ad_campaign_dashboard`

use iawj_study::core::metrics::{latency_quantile_ms, time_to_fraction_ms};
use iawj_study::core::{execute, Algorithm, RunConfig};
use iawj_study::datagen::ysb;

fn main() {
    // 1% of paper volume: 1000 campaigns x 100k ad events over 1 second.
    let dataset = ysb(0.01, 1);
    println!(
        "campaigns table: {} rows (at rest); ad events: {} over {} ms",
        dataset.r.len(),
        dataset.s.len(),
        dataset.window.len_ms
    );

    let cfg = RunConfig::with_threads(4).speedup(50.0);
    println!(
        "\n{:<8} {:>12} {:>14} {:>16}",
        "algo", "tpt (t/ms)", "p95 lat (ms)", "t-to-50% (ms)"
    );
    for algo in [Algorithm::Npj, Algorithm::ShjJm] {
        let result = execute(algo, &dataset, &cfg);
        println!(
            "{:<8} {:>12.0} {:>14.1} {:>16.1}",
            algo.name(),
            result.throughput_tpms(),
            latency_quantile_ms(&result, 0.95).unwrap_or(f64::NAN),
            time_to_fraction_ms(&result, 0.5).unwrap_or(f64::NAN),
        );
    }
    println!(
        "\nThe lazy join waits out the window (latency ~ window length) but \
         processes at memory speed; the eager join emits each campaign hit \
         as the event arrives."
    );
}
