//! The paper's Stock scenario (§4.2.1): join a trades stream (R) with a
//! quotes stream (S) on stock id within a 1-second window, then derive
//! per-stock turnover counts from the matches.
//!
//! Stock has *low* arrival rates with bursty spikes (Figure 3a), so the
//! Figure 4 decision tree picks the eager SHJ^JM — it delivers matches
//! the moment both sides have arrived, instead of waiting out the window.
//!
//! Run with: `cargo run --release --example stock_turnover`

use iawj_study::core::decision::{recommend_default, Objective, Workload};
use iawj_study::core::metrics::latency_quantile_ms;
use iawj_study::core::{execute, Algorithm, RunConfig};
use iawj_study::datagen::stats::WorkloadStats;
use iawj_study::datagen::stock;
use std::collections::HashMap;

fn main() {
    // Statistical equivalent of the Shanghai Stock Exchange dataset at 20%
    // volume: trades (R) at ~12/ms, quotes (S) at ~15/ms, spiky arrivals.
    let dataset = stock(0.2, 1);
    let stats = WorkloadStats::measure(&dataset);
    println!(
        "trades: {} tuples over {} stocks (peak {} per ms)",
        stats.r.count, stats.r.distinct_keys, stats.r.peak_per_ms
    );
    println!(
        "quotes: {} tuples over {} stocks (peak {} per ms)",
        stats.s.count, stats.s.distinct_keys, stats.s.peak_per_ms
    );

    let pick = recommend_default(
        &Workload {
            rate_r: dataset.rate_r,
            rate_s: dataset.rate_s,
            dupe: stats.r.dupe_avg.max(stats.s.dupe_avg),
            skew_key: stats.r.skew_key_est,
            total_tuples: dataset.total_inputs(),
            cores: 4,
        },
        Objective::Latency,
    );
    println!("decision tree picks: {pick} (expected SHJ_JM for a low-rate stream)");
    assert_eq!(pick, Algorithm::ShjJm);

    // Record every match so we can aggregate turnover per stock.
    let cfg = RunConfig::with_threads(4).speedup(50.0).record_all();
    let result = execute(pick, &dataset, &cfg);
    println!("trade-quote matches: {}", result.matches);
    if let Some(p95) = latency_quantile_ms(&result, 0.95) {
        println!("p95 match latency: {p95:.2} ms (stream time)");
    }

    // Turnover proxy: matched trade-quote pairs per stock id.
    let mut turnover: HashMap<u32, u64> = HashMap::new();
    for m in &result.samples {
        *turnover.entry(m.key).or_insert(0) += 1;
    }
    let mut top: Vec<(u32, u64)> = turnover.into_iter().collect();
    top.sort_by_key(|&(_, n)| std::cmp::Reverse(n));
    println!("top-5 stocks by matched activity:");
    for (stock_id, n) in top.into_iter().take(5) {
        println!("  stock {stock_id:>4}: {n} matches");
    }
}
