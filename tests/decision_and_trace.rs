//! Integration of the Figure 4 decision tree with measured workload
//! statistics, and qualitative checks of the cache-trace profiles against
//! the paper's §5.3/§5.6 findings.

use iawj_study::core::decision::{recommend_default, Objective, Workload};
use iawj_study::core::{trace, Algorithm, RunConfig};
use iawj_study::datagen::stats::WorkloadStats;
use iawj_study::datagen::{debs, rovio, stock, ysb, MicroSpec};

fn descriptor(ds: &iawj_study::datagen::Dataset, cores: usize) -> Workload {
    let st = WorkloadStats::measure(ds);
    Workload {
        rate_r: ds.rate_r,
        rate_s: ds.rate_s,
        dupe: st.r.dupe_avg.max(st.s.dupe_avg),
        skew_key: st.r.skew_key_est.max(st.s.skew_key_est),
        total_tuples: ds.total_inputs(),
        cores,
    }
}

#[test]
fn stock_gets_eager_recommendation() {
    // Stock: both streams far below the low-rate threshold.
    let ds = stock(1.0, 1);
    let pick = recommend_default(&descriptor(&ds, 8), Objective::Latency);
    assert_eq!(pick, Algorithm::ShjJm);
}

#[test]
fn debs_gets_lazy_sort_recommendation() {
    // DEBS: data at rest (infinite rate), massive duplication.
    let ds = debs(0.05, 1);
    let pick = recommend_default(&descriptor(&ds, 8), Objective::Throughput);
    assert!(pick.is_lazy() && pick.is_sort_based(), "got {pick}");
}

#[test]
fn rovio_full_scale_rates_get_lazy_sorts() {
    // At paper scale Rovio streams 3000 t/ms with dupe ~18k.
    let w = Workload {
        rate_r: iawj_study::common::Rate::PerMs(3000.0),
        rate_s: iawj_study::common::Rate::PerMs(3000.0),
        dupe: 17960.0,
        skew_key: 0.04,
        total_tuples: 6_000_000,
        cores: 8,
    };
    // Medium rate + high duplication -> PMJ^JB per the tree.
    assert_eq!(
        recommend_default(&w, Objective::Throughput),
        Algorithm::PmjJb
    );
}

#[test]
fn ysb_full_scale_gets_lazy_hash() {
    let w = Workload {
        rate_r: iawj_study::common::Rate::Infinite,
        rate_s: iawj_study::common::Rate::PerMs(30000.0),
        dupe: 1.0, // R's campaign keys are unique
        skew_key: 0.03,
        total_tuples: 10_000_000,
        cores: 8,
    };
    let pick = recommend_default(&w, Objective::Throughput);
    assert!(
        matches!(pick, Algorithm::Npj | Algorithm::Prj),
        "got {pick}"
    );
}

#[test]
fn trace_rovio_reproduces_section_5_6_orderings() {
    let ds = rovio(0.002, 1);
    let cfg = RunConfig::with_threads(4);
    let npj = trace::profile(Algorithm::Npj, &ds, &cfg);
    let mway = trace::profile(Algorithm::MWay, &ds, &cfg);
    let shj = trace::profile(Algorithm::ShjJm, &ds, &cfg);
    // "MWay and MPass show ... negligible Memory Bound; NPJ is more memory
    // bound": L1D misses per tuple ordering NPJ >> MWay.
    assert!(npj.per_tuple().l1d > mway.per_tuple().l1d * 2.0);
    // "a high L3 cache miss issue is also observed in SHJ^JM": SHJ L3
    // misses at least comparable to NPJ's order of magnitude.
    assert!(shj.per_tuple().l1d > mway.per_tuple().l1d);
}

#[test]
fn trace_ysb_partition_misses_highest_for_jb() {
    use iawj_study::common::Phase;
    let ds = ysb(0.002, 1);
    let cfg = RunConfig::with_threads(4);
    let jb = trace::profile(Algorithm::ShjJb, &ds, &cfg);
    let jm = trace::profile(Algorithm::ShjJm, &ds, &cfg);
    // §5.3.1: SHJ^JB / PMJ^JB have higher partition-phase misses (JB's
    // content-sensitive routing + status log).
    assert!(
        jb.phase(Phase::Partition).l1d_misses >= jm.phase(Phase::Partition).l1d_misses,
        "JB {} vs JM {}",
        jb.phase(Phase::Partition).l1d_misses,
        jm.phase(Phase::Partition).l1d_misses
    );
}

#[test]
fn eager_core_bound_exceeds_lazy() {
    use iawj_study::cachesim::CostModel;
    let ds = MicroSpec::static_counts(5000, 5000)
        .dupe(10)
        .seed(5)
        .generate();
    let cfg = RunConfig::with_threads(4);
    let model = CostModel::default();
    let lazy = trace::profile(Algorithm::MPass, &ds, &cfg).estimate(&model);
    let eager = trace::profile(Algorithm::PmjJm, &ds, &cfg).estimate(&model);
    let (_, lazy_core, _) = lazy.percentages();
    let (_, eager_core, _) = eager.percentages();
    assert!(
        eager_core > lazy_core,
        "eager core-bound {eager_core}% must exceed lazy {lazy_core}%"
    );
}
