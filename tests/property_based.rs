//! Property-based cross-crate tests: random workload shapes, every
//! algorithm must agree with the nested-loop oracle; plus invariants of
//! the kernel layer under arbitrary inputs.

use iawj_study::core::reference::nested_loop_join;
use iawj_study::core::{execute, Algorithm, RunConfig};
use iawj_study::datagen::MicroSpec;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig { cases: 12, ..ProptestConfig::default() })]

    #[test]
    fn all_algorithms_match_oracle(
        n_r in 1usize..400,
        n_s in 1usize..400,
        dupe in 1usize..20,
        skew in 0u8..3,
        threads in 1usize..6,
        seed in 0u64..1000,
    ) {
        let spec = MicroSpec::static_counts(n_r, n_s)
            .dupe(dupe)
            .skew_key(skew as f64 * 0.7)
            .seed(seed);
        let ds = spec.generate();
        let expect = nested_loop_join(&ds.r, &ds.s, ds.window);
        for algo in Algorithm::STUDIED {
            let cfg = RunConfig::with_threads(threads).record_all();
            let result = execute(algo, &ds, &cfg);
            let mut got: Vec<_> = result.samples.iter().map(|m| (m.key, m.r_ts, m.s_ts)).collect();
            got.sort_unstable();
            prop_assert_eq!(&got, &expect, "{} n_r={} n_s={} dupe={} threads={}",
                algo, n_r, n_s, dupe, threads);
        }
    }

    #[test]
    fn npj_table_modes_agree_with_oracle(
        n_r in 1usize..400,
        n_s in 1usize..400,
        dupe in 1usize..20,
        skew in 0u8..3,
        threads in 1usize..6,
        steal in any::<bool>(),
        seed in 0u64..1000,
    ) {
        use iawj_study::core::{NpjTable, Scheduler};
        let ds = MicroSpec::static_counts(n_r, n_s)
            .dupe(dupe)
            .skew_key(skew as f64 * 0.7)
            .seed(seed)
            .generate();
        let expect = nested_loop_join(&ds.r, &ds.s, ds.window);
        let sched = if steal { Scheduler::Steal } else { Scheduler::Static };
        for table in NpjTable::ALL {
            let cfg = RunConfig::with_threads(threads)
                .record_all()
                .scheduler(sched)
                .morsel_size(64)
                .npj_table(table);
            let result = execute(Algorithm::Npj, &ds, &cfg);
            let mut got: Vec<_> = result.samples.iter().map(|m| (m.key, m.r_ts, m.s_ts)).collect();
            got.sort_unstable();
            prop_assert_eq!(&got, &expect, "NPJ/{} n_r={} n_s={} dupe={} threads={} sched={}",
                table, n_r, n_s, dupe, threads, sched);
        }
    }

    #[test]
    fn sort_backends_agree_with_std(mut data in proptest::collection::vec(any::<u64>(), 0..2000)) {
        use iawj_study::exec::sort::{sort_packed, SortBackend};
        let mut expect = data.clone();
        expect.sort_unstable();
        let mut scalar = data.clone();
        sort_packed(&mut scalar, SortBackend::Scalar);
        prop_assert_eq!(&scalar, &expect);
        sort_packed(&mut data, SortBackend::Vectorized);
        prop_assert_eq!(&data, &expect);
    }

    #[test]
    fn radix_partition_is_a_permutation(
        keys in proptest::collection::vec(any::<u32>(), 0..2000),
        bits in 1u32..10,
        threads in 1usize..5,
    ) {
        use iawj_study::common::Tuple;
        use iawj_study::exec::radix::{partition_of, partition_parallel};
        let tuples: Vec<Tuple> = keys.iter().enumerate()
            .map(|(i, &k)| Tuple::new(k, i as u32)).collect();
        let part = partition_parallel(&tuples, 0, bits, threads);
        let mut a: Vec<u64> = tuples.iter().map(|t| t.pack()).collect();
        let mut b: Vec<u64> = part.data.iter().map(|t| t.pack()).collect();
        a.sort_unstable();
        b.sort_unstable();
        prop_assert_eq!(a, b);
        for p in 0..part.fanout() {
            for t in part.partition(p) {
                prop_assert_eq!(partition_of(t.key, 0, bits), p);
            }
        }
    }

    #[test]
    fn merge_join_count_matches_hashmap(
        r_keys in proptest::collection::vec(0u32..50, 0..300),
        s_keys in proptest::collection::vec(0u32..50, 0..300),
    ) {
        use iawj_study::exec::mergejoin::count_matches;
        use std::collections::HashMap;
        let mut r: Vec<u64> = r_keys.iter().enumerate().map(|(i, &k)| ((k as u64) << 32) | i as u64).collect();
        let mut s: Vec<u64> = s_keys.iter().enumerate().map(|(i, &k)| ((k as u64) << 32) | i as u64).collect();
        r.sort_unstable();
        s.sort_unstable();
        let mut freq: HashMap<u32, u64> = HashMap::new();
        for &k in &r_keys { *freq.entry(k).or_insert(0) += 1; }
        let expect: u64 = s_keys.iter().map(|k| freq.get(k).copied().unwrap_or(0)).sum();
        prop_assert_eq!(count_matches(&r, &s), expect);
    }

    #[test]
    fn zipf_samples_in_domain(n in 1usize..500, theta in 0.0f64..2.5, seed in 0u64..100) {
        use iawj_study::common::{Rng, Zipf};
        let z = Zipf::new(n, theta);
        let mut rng = Rng::new(seed);
        for _ in 0..200 {
            prop_assert!(z.sample(&mut rng) < n);
        }
    }
}
