//! Integration tests of the beyond-the-paper extensions: the hybrid
//! operator, the windowing layer, and the adaptive dispatcher — including
//! property-based checks that they never disagree with the oracle.

use iawj_study::common::{Tuple, Window};
use iawj_study::core::reference::{match_count, nested_loop_join};
use iawj_study::core::windowing::{execute_windowed, windows_for, WindowSpec};
use iawj_study::core::{execute, Algorithm, RunConfig};
use iawj_study::datagen::MicroSpec;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig { cases: 10, ..ProptestConfig::default() })]

    #[test]
    fn hybrid_matches_oracle_for_any_threshold(
        n in 50usize..500,
        dupe in 1usize..10,
        defer_at in 1usize..100,
        threads in 1usize..5,
        seed in 0u64..200,
    ) {
        let ds = MicroSpec::static_counts(n, n).dupe(dupe).seed(seed).generate();
        let mut cfg = RunConfig::with_threads(threads).record_all();
        cfg.hybrid.defer_at_batch = defer_at;
        let result = execute(Algorithm::HybridShj, &ds, &cfg);
        prop_assert_eq!(result.matches, match_count(&ds.r, &ds.s, ds.window));
    }

    #[test]
    fn tumbling_windows_equal_filtered_oracle(
        n in 20usize..300,
        keys in 2u32..40,
        span in 50u32..400,
        len in 10u32..200,
        seed in 0u64..100,
    ) {
        use iawj_study::common::Rng;
        let mut rng = Rng::new(seed);
        let mk = |rng: &mut Rng| -> Vec<Tuple> {
            let mut v: Vec<Tuple> = (0..n)
                .map(|_| Tuple::new(rng.below(keys as u64) as u32, rng.below(span as u64) as u32))
                .collect();
            v.sort_unstable_by_key(|t| t.ts);
            v
        };
        let r = mk(&mut rng);
        let s = mk(&mut rng);
        let spec = WindowSpec::Tumbling { len_ms: len };
        let cfg = RunConfig::with_threads(2).record_all();
        for wr in execute_windowed(Algorithm::Npj, &r, &s, spec, &cfg) {
            let w = wr.window;
            let expect = nested_loop_join(&r, &s, w).len() as u64;
            prop_assert_eq!(wr.result.matches, expect, "window {:?}", w);
        }
    }

    #[test]
    fn session_windows_cover_every_tuple_once(
        bursts in 1usize..4,
        gap in 50u32..200,
        seed in 0u64..100,
    ) {
        use iawj_study::common::Rng;
        let mut rng = Rng::new(seed);
        let mut r = Vec::new();
        let mut base = 0u32;
        for _ in 0..bursts {
            for _ in 0..30 {
                r.push(Tuple::new(rng.below(8) as u32, base + rng.below(40) as u32));
            }
            base += 40 + gap + 10; // guaranteed inter-burst silence > gap
        }
        r.sort_unstable_by_key(|t| t.ts);
        let ws = windows_for(WindowSpec::Session { gap_ms: gap }, &r, &[]);
        prop_assert_eq!(ws.len(), bursts, "{:?}", ws);
        for t in &r {
            let covering = ws.iter().filter(|w| w.contains(t.ts)).count();
            prop_assert_eq!(covering, 1, "tuple at {} covered {} times", t.ts, covering);
        }
    }
}

#[test]
fn hybrid_progressiveness_tracks_shj_under_light_load() {
    use iawj_study::core::metrics::time_to_fraction_ms;
    // Slow streams, moderately compressed: both eager operators deliver
    // matches inside the window while NPJ waits it out. (At much higher
    // compression the eager workers become CPU-bound on a time-sliced
    // host and their mid-window head start shrinks to scheduler noise.)
    let ds = MicroSpec::with_rates(10.0, 10.0).dupe(2).seed(9).generate();
    let cfg = RunConfig::with_threads(2).record_all().speedup(50.0);
    let shj = execute(Algorithm::ShjJm, &ds, &cfg);
    let hybrid = execute(Algorithm::HybridShj, &ds, &cfg);
    let lazy = execute(Algorithm::Npj, &ds, &cfg);
    let t50 = |r: &iawj_study::core::RunResult| time_to_fraction_ms(r, 0.5).unwrap();
    assert!(
        t50(&hybrid) < t50(&lazy),
        "hybrid {} must reach 50% before the lazy join {}",
        t50(&hybrid),
        t50(&lazy)
    );
    // And it must not be wildly behind plain SHJ.
    assert!(t50(&hybrid) < t50(&shj) * 3.0 + 100.0);
}

#[test]
fn windowed_runs_rebase_timestamps() {
    // A window starting at 500 must behave like one starting at 0.
    let r: Vec<Tuple> = (0..50).map(|i| Tuple::new(i % 10, 500 + i % 20)).collect();
    let s: Vec<Tuple> = (0..50).map(|i| Tuple::new(i % 10, 500 + i % 20)).collect();
    let cfg = RunConfig::with_threads(2);
    let out = execute_windowed(
        Algorithm::MPass,
        &r,
        &s,
        WindowSpec::Tumbling { len_ms: 600 },
        &cfg,
    );
    let total: u64 = out.iter().map(|w| w.result.matches).sum();
    assert_eq!(
        total,
        nested_loop_join(&r, &s, Window::of_len(1200)).len() as u64
    );
}

#[test]
fn adaptive_never_loses_badly_across_regimes() {
    use iawj_study::core::adaptive::execute_adaptive;
    use iawj_study::core::decision::Objective;
    // For each regime, the adaptive pick's throughput must be within 4x of
    // the best fixed algorithm (typically it IS the best or near it; the
    // loose bound keeps the test robust on noisy CI hosts).
    let regimes = [
        MicroSpec::static_counts(20_000, 20_000).dupe(1).seed(1),
        MicroSpec::static_counts(10_000, 10_000).dupe(100).seed(2),
    ];
    for spec in regimes {
        let ds = spec.generate();
        let cfg = RunConfig::with_threads(2);
        let adaptive = execute_adaptive(&ds, &cfg, Objective::Throughput);
        let mut best = 0.0f64;
        for algo in Algorithm::STUDIED {
            best = best.max(execute(algo, &ds, &cfg).throughput_tpms());
        }
        let got = adaptive.result.throughput_tpms();
        assert!(
            got * 4.0 > best,
            "adaptive chose {} at {got:.0} t/ms vs best {best:.0}",
            adaptive.chosen
        );
    }
}
