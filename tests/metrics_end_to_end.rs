//! End-to-end metric structure: the three §4.1 metrics and the §5.3
//! breakdown must come out well-formed for every algorithm on streaming
//! and static inputs.

use iawj_study::common::{Phase, PHASES};
use iawj_study::core::metrics::{latency_quantile_ms, progressiveness, time_to_fraction_ms};
use iawj_study::core::output::aggregate_mem_curve;
use iawj_study::core::{execute, Algorithm, RunConfig};
use iawj_study::datagen::MicroSpec;

fn streaming_ds() -> iawj_study::datagen::Dataset {
    MicroSpec::with_rates(8.0, 8.0).dupe(4).seed(21).generate()
}

#[test]
fn progressiveness_is_monotone_and_complete() {
    let ds = streaming_ds();
    for algo in Algorithm::STUDIED {
        let cfg = RunConfig::with_threads(2).record_all().speedup(300.0);
        let res = execute(algo, &ds, &cfg);
        let curve = progressiveness(&res);
        assert!(!curve.is_empty(), "{algo}: no progress recorded");
        assert!(
            curve.windows(2).all(|w| w[0].1 <= w[1].1),
            "{algo}: fractions must be non-decreasing"
        );
        let last = curve.last().unwrap();
        assert!(
            (last.1 - 1.0).abs() < 1e-9,
            "{algo}: curve must end at 100%"
        );
        let t50 = time_to_fraction_ms(&res, 0.5).expect("50% point exists");
        assert!(t50 <= last.0 + 1e-9);
    }
}

#[test]
fn latency_quantiles_are_ordered() {
    let ds = streaming_ds();
    let cfg = RunConfig::with_threads(2).record_all().speedup(300.0);
    for algo in [Algorithm::Npj, Algorithm::ShjJm, Algorithm::PmjJb] {
        let res = execute(algo, &ds, &cfg);
        let p50 = latency_quantile_ms(&res, 0.5).unwrap();
        let p95 = latency_quantile_ms(&res, 0.95).unwrap();
        let p100 = latency_quantile_ms(&res, 1.0).unwrap();
        assert!(p50 <= p95 && p95 <= p100, "{algo}: {p50} {p95} {p100}");
        assert!(p50 >= 0.0);
    }
}

#[test]
fn eager_beats_lazy_on_latency_for_slow_streams() {
    // The paper's low-rate finding: SHJ^JM delivers matches almost
    // immediately while lazy algorithms wait out the window. Use real-time
    // factors large enough that scheduling noise cannot flip the order.
    let ds = MicroSpec::with_rates(5.0, 5.0).seed(22).generate();
    let cfg = RunConfig::with_threads(2).record_all().speedup(100.0);
    let eager = execute(Algorithm::ShjJm, &ds, &cfg);
    let lazy = execute(Algorithm::Npj, &ds, &cfg);
    let eager_p50 = latency_quantile_ms(&eager, 0.5).unwrap();
    let lazy_p50 = latency_quantile_ms(&lazy, 0.5).unwrap();
    assert!(
        eager_p50 < lazy_p50 / 2.0,
        "eager median latency {eager_p50} must be far below lazy {lazy_p50}"
    );
}

#[test]
fn breakdown_phases_are_consistent() {
    let ds = MicroSpec::static_counts(5000, 5000)
        .dupe(8)
        .seed(23)
        .generate();
    for algo in Algorithm::STUDIED {
        let cfg = RunConfig::with_threads(2);
        let res = execute(algo, &ds, &cfg);
        let total = res.breakdown.total_ns();
        assert!(total > 0, "{algo}: empty breakdown");
        let sum: u64 = PHASES.iter().map(|&p| res.breakdown[p]).sum();
        assert_eq!(sum, total);
        if algo.is_sort_based() {
            assert!(
                res.breakdown[Phase::BuildSort] > 0,
                "{algo}: sort time missing"
            );
        }
        // Per-thread breakdowns sum to the merged one.
        let per: u64 = res.per_thread.iter().map(|b| b.total_ns()).sum();
        assert_eq!(per, total);
    }
}

#[test]
fn memory_gauge_produces_a_curve() {
    let ds = MicroSpec::static_counts(20_000, 20_000)
        .dupe(4)
        .seed(24)
        .generate();
    let mut cfg = RunConfig::with_threads(2);
    cfg.mem_sample_every = 512;
    for algo in [Algorithm::ShjJm, Algorithm::PmjJb] {
        let res = execute(algo, &ds, &cfg);
        assert!(!res.mem_samples.is_empty(), "{algo}: no memory samples");
        let curve = aggregate_mem_curve(&res.mem_samples, res.threads);
        let peak = curve.iter().map(|&(_, b)| b).max().unwrap();
        assert!(peak > 0);
        // Times non-decreasing.
        assert!(curve.windows(2).all(|w| w[0].0 <= w[1].0));
    }
}

#[test]
fn cpu_utilisation_bounded() {
    let ds = streaming_ds();
    let cfg = RunConfig::with_threads(2).speedup(300.0);
    for algo in [Algorithm::Npj, Algorithm::ShjJm] {
        let res = execute(algo, &ds, &cfg);
        let u = res.cpu_utilisation();
        assert!((0.0..=1.0).contains(&u), "{algo}: utilisation {u}");
    }
}

#[test]
fn throughput_definition_matches_inputs_over_last_emit() {
    let ds = MicroSpec::static_counts(3000, 3000).seed(25).generate();
    let cfg = RunConfig::with_threads(2);
    let res = execute(Algorithm::Prj, &ds, &cfg);
    assert!(res.last_emit_ms > 0.0);
    let expect = res.total_inputs as f64 / res.last_emit_ms;
    assert!((res.throughput_tpms() - expect).abs() < 1e-9);
}
