//! Golden-shape test for the observability pipeline: a journaled 2-thread
//! NPJ run must export a well-formed Chrome trace with one lane per worker,
//! non-overlapping spans per lane, and a histogram that agrees with the
//! sampled latencies.

use iawj_study::core::{execute, metrics, Algorithm, RunConfig};
use iawj_study::datagen::MicroSpec;
use iawj_study::obs::json::Json;

fn journaled_npj_run() -> iawj_study::core::RunResult {
    let ds = MicroSpec::static_counts(3000, 3000)
        .dupe(4)
        .seed(11)
        .generate();
    let mut cfg = RunConfig::with_threads(2).record_all();
    cfg.journal = true;
    execute(Algorithm::Npj, &ds, &cfg)
}

#[test]
fn npj_chrome_trace_is_well_formed() {
    let r = journaled_npj_run();
    assert_eq!(r.journals.len(), 2, "both workers journal");
    let doc = Json::parse(&r.chrome_trace()).expect("trace is valid JSON");
    assert_eq!(
        doc.get("displayTimeUnit").and_then(Json::as_str),
        Some("ms")
    );
    let events = doc
        .get("traceEvents")
        .and_then(Json::as_arr)
        .expect("traceEvents array");

    // One metadata (thread_name) event and at least one complete span per
    // worker lane; all events share pid 1.
    for tid in 0..2u64 {
        let lane: Vec<&Json> = events
            .iter()
            .filter(|e| e.get("tid").and_then(Json::as_u64) == Some(tid))
            .collect();
        assert!(
            lane.iter()
                .any(|e| e.get("ph").and_then(Json::as_str) == Some("M")),
            "worker {tid} has a thread_name metadata event"
        );
        // Per-lane complete spans, in emission order, must not overlap.
        let mut spans: Vec<(f64, f64)> = lane
            .iter()
            .filter(|e| e.get("ph").and_then(Json::as_str) == Some("X"))
            .map(|e| {
                let ts = e.get("ts").and_then(Json::as_f64).expect("ts");
                let dur = e.get("dur").and_then(Json::as_f64).expect("dur");
                (ts, ts + dur)
            })
            .collect();
        assert!(!spans.is_empty(), "worker {tid} recorded phase spans");
        spans.sort_by(|a, b| a.0.total_cmp(&b.0));
        for w in spans.windows(2) {
            assert!(
                w[0].1 <= w[1].0 + 1e-6,
                "worker {tid} spans overlap: {:?} then {:?}",
                w[0],
                w[1]
            );
        }
    }
    for e in events {
        assert_eq!(e.get("pid").and_then(Json::as_u64), Some(1));
    }

    // NPJ's phases appear as span names; the build barrier as an instant.
    let names: Vec<&str> = events
        .iter()
        .filter(|e| e.get("ph").and_then(Json::as_str) == Some("X"))
        .filter_map(|e| e.get("name").and_then(Json::as_str))
        .collect();
    assert!(names.contains(&"build/sort"), "{names:?}");
    assert!(names.contains(&"probe"), "{names:?}");
    assert!(events.iter().any(|e| {
        e.get("ph").and_then(Json::as_str) == Some("i")
            && e.get("name").and_then(Json::as_str) == Some("barrier:build_done")
    }));
}

#[test]
fn histogram_matches_sampled_quantiles_at_full_sampling() {
    let r = journaled_npj_run();
    assert_eq!(r.hist.count(), r.matches, "histogram covers every match");
    // With sample_every = 1 both estimators see the same population. Rank
    // the recorded latencies with the histogram's convention (the
    // ceil(q·n)-th observation) so the only disagreement left is the log
    // bucketing, which must stay within 2%.
    let mut lat: Vec<f64> = r.samples.iter().map(|m| m.latency_ms()).collect();
    lat.sort_by(|a, b| a.total_cmp(b));
    for q in [0.5, 0.95, 0.99] {
        let hist = metrics::latency_quantile_exact_ms(&r, q).unwrap();
        let rank = ((q * lat.len() as f64).ceil() as usize).clamp(1, lat.len());
        let exact = lat[rank - 1];
        assert!(
            (hist - exact).abs() <= exact * 0.02 + 0.01,
            "q={q}: hist={hist} exact={exact}"
        );
    }
}

#[test]
fn disabled_journal_leaves_no_trace() {
    let ds = MicroSpec::static_counts(500, 500)
        .dupe(2)
        .seed(12)
        .generate();
    let r = execute(Algorithm::Npj, &ds, &RunConfig::with_threads(2));
    assert!(r.journals.is_empty());
    let doc = Json::parse(&r.chrome_trace()).expect("empty trace still valid JSON");
    assert_eq!(
        doc.get("traceEvents")
            .and_then(Json::as_arr)
            .map(<[Json]>::len),
        Some(0)
    );
}
