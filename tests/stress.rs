//! Stress tests. The skew-scheduler tests below run everywhere (CI runs
//! them in release via the `stress` job); the `#[ignore]`d ones are opt-in
//! at larger-than-CI scales: `cargo test --release --test stress -- --ignored`

use iawj_study::core::reference::match_count;
use iawj_study::core::{execute, Algorithm, NpjTable, RunConfig, Scheduler};
use iawj_study::datagen::{rovio, MicroSpec};
use iawj_study::obs::{MARK_CAS_RETRY, MARK_LATCH_WAIT};

/// A θ=0.99 Zipf window: the Fig. 10 workload shape that collapses static
/// range partitioning. Hot keys concentrate quadratic join work in a few
/// radix partitions / key ranges.
fn zipf_window() -> iawj_study::datagen::Dataset {
    MicroSpec::static_counts(8000, 8000)
        .dupe(4)
        .skew_key(0.99)
        .seed(33)
        .generate()
}

#[test]
fn zipf_window_completes_under_both_schedulers_with_equal_counts() {
    let ds = zipf_window();
    let expect = match_count(&ds.r, &ds.s, ds.window);
    for algo in Algorithm::STUDIED {
        for sched in Scheduler::ALL {
            let cfg = RunConfig::with_threads(8)
                .speedup(500.0)
                .scheduler(sched)
                .morsel_size(256);
            let result = execute(algo, &ds, &cfg);
            assert_eq!(result.matches, expect, "{algo} under {sched}");
        }
    }
}

#[test]
fn prj_steal_mode_records_steal_events_and_matches_static() {
    use iawj_study::exec::morsel::MARK_STEAL;
    let ds = zipf_window();
    let run = |sched: Scheduler| {
        let cfg = RunConfig::with_threads(8)
            .speedup(500.0)
            .scheduler(sched)
            .morsel_size(256)
            .with_journal();
        execute(Algorithm::Prj, &ds, &cfg)
    };
    let fixed = run(Scheduler::Static);
    let stolen = run(Scheduler::Steal);
    assert_eq!(
        stolen.matches, fixed.matches,
        "steal mode must not change the match count"
    );
    assert!(
        stolen.count_marks(MARK_STEAL) >= 1,
        "θ=0.99 at 8 threads must trigger at least one steal"
    );
    assert_eq!(
        fixed.count_marks(MARK_STEAL),
        0,
        "static mode must never steal"
    );
}

/// The Fig-8-style contention A/B: under θ=0.99 at 8 threads the latched
/// NPJ table must exhibit observable latch contention (its bucket latches
/// are held across whole hot-chain scans on both build and probe, so any
/// preemption of a holder strands every other thread hitting that bucket),
/// while the lock-free table — whose only conflict window is the two
/// instructions between a bucket-head load and its CAS — must journal
/// strictly fewer contention events. Both modes must agree on the match
/// count, and neither may emit the other's mark.
#[test]
fn npj_lockfree_table_journals_less_contention_than_latched() {
    let ds = MicroSpec::static_counts(20_000, 20_000)
        .dupe(4)
        .skew_key(0.99)
        .seed(44)
        .generate();
    let run = |table: NpjTable| {
        let cfg = RunConfig::with_threads(8)
            .speedup(500.0)
            .npj_table(table)
            .with_journal();
        execute(Algorithm::Npj, &ds, &cfg)
    };
    // Whether a latch wait actually occurs in one run depends on the OS
    // interleaving (on a single hardware thread it needs a preemption to
    // land inside a latch-held chain scan), so accumulate over bounded
    // attempts; the hot buckets of a θ=0.99 window make each attempt far
    // more likely than not to contend. The mode-exclusivity invariants are
    // deterministic and assert on every attempt.
    let (mut waits, mut retries) = (0usize, 0usize);
    for attempt in 0..12 {
        let latched = run(NpjTable::Latch);
        let lockfree = run(NpjTable::LockFree);
        assert_eq!(
            latched.matches, lockfree.matches,
            "table modes must agree on the match count (attempt {attempt})"
        );
        assert_eq!(
            latched.count_marks(MARK_CAS_RETRY),
            0,
            "latch mode never CASes"
        );
        assert_eq!(
            lockfree.count_marks(MARK_LATCH_WAIT),
            0,
            "lock-free mode has no latches to wait on"
        );
        waits += latched.count_marks(MARK_LATCH_WAIT);
        retries += lockfree.count_marks(MARK_CAS_RETRY);
        if waits >= 1 && retries < waits {
            break;
        }
    }
    assert!(
        waits >= 1,
        "θ=0.99 at 8 threads must contend the latched table at least once"
    );
    assert!(
        retries < waits,
        "lock-free contention ({retries} cas:retry) must stay below \
         latched contention ({waits} latch:wait)"
    );
}

#[test]
#[ignore = "large input; run with --ignored in release mode"]
fn million_tuple_static_join_all_algorithms() {
    let ds = MicroSpec::static_counts(500_000, 500_000)
        .dupe(20)
        .seed(1)
        .generate();
    let expect = match_count(&ds.r, &ds.s, ds.window);
    for algo in Algorithm::STUDIED {
        let cfg = RunConfig::with_threads(4);
        let result = execute(algo, &ds, &cfg);
        assert_eq!(result.matches, expect, "{algo}");
    }
}

#[test]
#[ignore = "large input; run with --ignored in release mode"]
fn rovio_at_five_percent_scale() {
    // ~300k tuples with dupe ~900: tens of millions of matches.
    let ds = rovio(0.05, 1);
    let expect = match_count(&ds.r, &ds.s, ds.window);
    for algo in [Algorithm::MPass, Algorithm::PmjJb, Algorithm::Npj] {
        let cfg = RunConfig::with_threads(4).speedup(100.0);
        let result = execute(algo, &ds, &cfg);
        assert_eq!(result.matches, expect, "{algo}");
    }
}

#[test]
#[ignore = "long-running; exercises many mid-stream hybrid flushes"]
fn hybrid_under_sustained_pressure() {
    let ds = MicroSpec::static_counts(2_000_000, 2_000_000)
        .dupe(4)
        .seed(2)
        .generate();
    let expect = match_count(&ds.r, &ds.s, ds.window);
    let cfg = RunConfig::with_threads(4);
    let result = execute(Algorithm::HybridShj, &ds, &cfg);
    assert_eq!(result.matches, expect);
}
