//! Opt-in stress tests at larger-than-CI scales. Run with:
//! `cargo test --release --test stress -- --ignored`

use iawj_study::core::reference::match_count;
use iawj_study::core::{execute, Algorithm, RunConfig};
use iawj_study::datagen::{rovio, MicroSpec};

#[test]
#[ignore = "large input; run with --ignored in release mode"]
fn million_tuple_static_join_all_algorithms() {
    let ds = MicroSpec::static_counts(500_000, 500_000)
        .dupe(20)
        .seed(1)
        .generate();
    let expect = match_count(&ds.r, &ds.s, ds.window);
    for algo in Algorithm::STUDIED {
        let cfg = RunConfig::with_threads(4);
        let result = execute(algo, &ds, &cfg);
        assert_eq!(result.matches, expect, "{algo}");
    }
}

#[test]
#[ignore = "large input; run with --ignored in release mode"]
fn rovio_at_five_percent_scale() {
    // ~300k tuples with dupe ~900: tens of millions of matches.
    let ds = rovio(0.05, 1);
    let expect = match_count(&ds.r, &ds.s, ds.window);
    for algo in [Algorithm::MPass, Algorithm::PmjJb, Algorithm::Npj] {
        let cfg = RunConfig::with_threads(4).speedup(100.0);
        let result = execute(algo, &ds, &cfg);
        assert_eq!(result.matches, expect, "{algo}");
    }
}

#[test]
#[ignore = "long-running; exercises many mid-stream hybrid flushes"]
fn hybrid_under_sustained_pressure() {
    let ds = MicroSpec::static_counts(2_000_000, 2_000_000)
        .dupe(4)
        .seed(2)
        .generate();
    let expect = match_count(&ds.r, &ds.s, ds.window);
    let cfg = RunConfig::with_threads(4);
    let result = execute(Algorithm::HybridShj, &ds, &cfg);
    assert_eq!(result.matches, expect);
}
