//! Cross-crate correctness: every algorithm (and the handshake strawman)
//! must produce exactly the reference multiset of matches on every
//! workload shape — streaming and static, unique and duplicated keys,
//! skewed and uniform, symmetric and asymmetric.

use iawj_study::core::reference::{match_count, nested_loop_join};
use iawj_study::core::{execute, Algorithm, NpjTable, RunConfig, Scheduler};
use iawj_study::datagen::{Dataset, MicroSpec};

fn canonical(result: &iawj_study::core::RunResult) -> Vec<(u32, u32, u32)> {
    let mut v: Vec<_> = result
        .samples
        .iter()
        .map(|m| (m.key, m.r_ts, m.s_ts))
        .collect();
    v.sort_unstable();
    v
}

fn assert_all_algorithms_exact(ds: &Dataset, threads: usize, label: &str) {
    let expect = nested_loop_join(&ds.r, &ds.s, ds.window);
    for algo in Algorithm::STUDIED {
        let cfg = RunConfig::with_threads(threads).record_all().speedup(500.0);
        let result = execute(algo, ds, &cfg);
        assert_eq!(
            canonical(&result),
            expect,
            "{algo} diverged on {label} with {threads} threads"
        );
    }
}

#[test]
fn static_unique_keys() {
    let ds = MicroSpec::static_counts(1200, 900).seed(1).generate();
    assert_all_algorithms_exact(&ds, 4, "static unique");
}

#[test]
fn static_heavy_duplication() {
    let ds = MicroSpec::static_counts(600, 600)
        .dupe(60)
        .seed(2)
        .generate();
    assert_all_algorithms_exact(&ds, 4, "static dupe=60");
}

#[test]
fn static_skewed_keys() {
    let ds = MicroSpec::static_counts(1500, 1500)
        .dupe(10)
        .skew_key(1.4)
        .seed(3)
        .generate();
    assert_all_algorithms_exact(&ds, 3, "static zipf keys");
}

#[test]
fn streaming_uniform() {
    let ds = MicroSpec::with_rates(2.0, 2.5).dupe(4).seed(4).generate();
    assert_all_algorithms_exact(&ds, 2, "streaming uniform");
}

#[test]
fn streaming_skewed_arrivals() {
    let ds = MicroSpec::with_rates(2.0, 2.0)
        .dupe(2)
        .skew_ts(1.6)
        .seed(5)
        .generate();
    assert_all_algorithms_exact(&ds, 4, "streaming zipf arrivals");
}

#[test]
fn asymmetric_cardinalities() {
    let ds = MicroSpec::static_counts(50, 3000)
        .dupe(5)
        .seed(6)
        .generate();
    assert_all_algorithms_exact(&ds, 4, "tiny R, large S");
    let ds = MicroSpec::static_counts(3000, 50)
        .dupe(5)
        .seed(7)
        .generate();
    assert_all_algorithms_exact(&ds, 4, "large R, tiny S");
}

#[test]
fn single_and_many_threads() {
    let ds = MicroSpec::static_counts(800, 800)
        .dupe(8)
        .seed(8)
        .generate();
    for threads in [1usize, 2, 5, 8] {
        assert_all_algorithms_exact(&ds, threads, "thread sweep");
    }
}

/// The cross-engine differential harness guarding the morsel scheduler:
/// every studied engine, against the nested-loop oracle, over a randomized
/// grid of seed × Zipf key skew × thread count × scheduler — asserting the
/// *exact sorted match set*, not just the count. Skew θ=0.99 at small
/// morsel sizes is what actually forces steals through the new code paths.
#[test]
fn differential_all_engines_across_skew_threads_schedulers() {
    for seed in [11u64, 12] {
        for theta in [0.0f64, 0.4, 0.99] {
            let ds = MicroSpec::static_counts(600, 600)
                .dupe(6)
                .skew_key(theta)
                .seed(seed)
                .generate();
            let expect = nested_loop_join(&ds.r, &ds.s, ds.window);
            for threads in [1usize, 2, 4] {
                for sched in Scheduler::ALL {
                    for algo in Algorithm::STUDIED {
                        let cfg = RunConfig::with_threads(threads)
                            .record_all()
                            .speedup(500.0)
                            .scheduler(sched)
                            .morsel_size(64);
                        let result = execute(algo, &ds, &cfg);
                        assert_eq!(
                            canonical(&result),
                            expect,
                            "{algo} diverged (seed={seed} θ={theta} \
                             threads={threads} scheduler={sched})"
                        );
                    }
                }
            }
        }
    }
}

/// The index-engine differential harness guarding engines 9+: IBWJ and
/// IBWJ_PART against the nested-loop oracle over seed × Zipf key skew ×
/// thread count × scheduler × executor mode, asserting the exact sorted
/// match set. θ=0.99 concentrates one key-hash partition, which is what
/// actually forces IBWJ_PART's histogram-driven LPT repartition between
/// epochs; the eager drive interleaves R/S batches, exercising the
/// insert-then-probe exactly-once argument on both engines.
#[test]
fn differential_index_engines_across_skew_threads_schedulers() {
    use iawj_study::core::ExecMode;
    for seed in [91u64, 92] {
        for theta in [0.0f64, 0.99] {
            let ds = MicroSpec::static_counts(600, 600)
                .dupe(6)
                .skew_key(theta)
                .seed(seed)
                .generate();
            let expect = nested_loop_join(&ds.r, &ds.s, ds.window);
            for threads in [1usize, 4] {
                for sched in Scheduler::ALL {
                    for mode in [ExecMode::Pool, ExecMode::Spawn] {
                        for algo in Algorithm::INDEX {
                            let cfg = RunConfig::with_threads(threads)
                                .record_all()
                                .speedup(500.0)
                                .scheduler(sched)
                                .morsel_size(64)
                                .executor(mode);
                            let result = execute(algo, &ds, &cfg);
                            assert_eq!(
                                canonical(&result),
                                expect,
                                "{algo} diverged (seed={seed} θ={theta} \
                                 threads={threads} scheduler={sched} exec={mode:?})"
                            );
                        }
                    }
                }
            }
        }
    }
}

/// The latched-vs-lock-free differential harness guarding the NPJ table
/// variants: both table modes against the nested-loop oracle over seed ×
/// Zipf key skew × thread count × scheduler, asserting the exact sorted
/// match set. θ=0.99 concentrates the build and probe on a handful of hot
/// buckets, which is what actually forces contended latch acquisitions in
/// latch mode and bucket-head CAS races in lock-free mode.
#[test]
fn differential_npj_tables_across_skew_threads_schedulers() {
    for seed in [51u64, 52] {
        for theta in [0.0f64, 0.4, 0.99] {
            let ds = MicroSpec::static_counts(700, 700)
                .dupe(6)
                .skew_key(theta)
                .seed(seed)
                .generate();
            let expect = nested_loop_join(&ds.r, &ds.s, ds.window);
            for threads in [1usize, 2, 4, 8] {
                for sched in Scheduler::ALL {
                    for table in NpjTable::ALL {
                        let cfg = RunConfig::with_threads(threads)
                            .record_all()
                            .speedup(500.0)
                            .scheduler(sched)
                            .morsel_size(64)
                            .npj_table(table);
                        let result = execute(Algorithm::Npj, &ds, &cfg);
                        assert_eq!(
                            canonical(&result),
                            expect,
                            "NPJ/{table} diverged (seed={seed} θ={theta} \
                             threads={threads} scheduler={sched})"
                        );
                    }
                }
            }
        }
    }
}

/// The scalar-vs-simd kernel differential harness guarding the batched
/// hash/prefetch/sort paths: every studied engine under both kernel
/// backends against the nested-loop oracle, asserting the exact sorted
/// match set. θ=0.99 concentrates probes on hot buckets (stressing the
/// prefetched probe pipeline); dupe=6 exercises duplicate-key chains in
/// the batched build.
#[test]
fn differential_kernel_backends_across_skew_threads() {
    use iawj_study::common::KernelBackend;
    for seed in [71u64, 72] {
        for theta in [0.0f64, 0.99] {
            let ds = MicroSpec::static_counts(600, 600)
                .dupe(6)
                .skew_key(theta)
                .seed(seed)
                .generate();
            let expect = nested_loop_join(&ds.r, &ds.s, ds.window);
            for threads in [1usize, 4] {
                for kernel in [KernelBackend::Scalar, KernelBackend::Simd] {
                    for algo in Algorithm::STUDIED {
                        let cfg = RunConfig::with_threads(threads)
                            .record_all()
                            .speedup(500.0)
                            .morsel_size(64)
                            .kernel(kernel)
                            .prefetch_dist(4);
                        let result = execute(algo, &ds, &cfg);
                        assert_eq!(
                            canonical(&result),
                            expect,
                            "{algo} diverged (seed={seed} θ={theta} \
                             threads={threads} kernel={kernel})"
                        );
                    }
                }
            }
        }
    }
}

/// The pool-vs-spawn differential harness guarding the persistent
/// executor: every studied engine under both executor modes (and, for the
/// pool, every pin policy) against the nested-loop oracle, asserting the
/// exact sorted match set. A persistent pool must be invisible to the
/// join: same tid→work mapping, same merge order, bitwise-identical
/// output — pinning may only move threads, never tuples.
#[test]
fn differential_executor_modes_across_engines_and_schedulers() {
    use iawj_study::core::{ExecMode, PinPolicy};
    let modes = [
        (ExecMode::Spawn, PinPolicy::None),
        (ExecMode::Pool, PinPolicy::None),
        (ExecMode::Pool, PinPolicy::Compact),
        (ExecMode::Pool, PinPolicy::Scatter),
    ];
    for seed in [91u64, 92] {
        let ds = MicroSpec::static_counts(600, 600)
            .dupe(6)
            .skew_key(0.99)
            .seed(seed)
            .generate();
        let expect = nested_loop_join(&ds.r, &ds.s, ds.window);
        for threads in [1usize, 4] {
            for sched in Scheduler::ALL {
                for algo in Algorithm::STUDIED {
                    for (mode, pin) in modes {
                        let cfg = RunConfig::with_threads(threads)
                            .record_all()
                            .speedup(500.0)
                            .scheduler(sched)
                            .morsel_size(64)
                            .executor(mode)
                            .pin(pin);
                        let result = execute(algo, &ds, &cfg);
                        assert_eq!(
                            canonical(&result),
                            expect,
                            "{algo} diverged (seed={seed} threads={threads} \
                             scheduler={sched} executor={mode:?} pin={pin:?})"
                        );
                    }
                }
            }
        }
    }
}

#[test]
fn handshake_strawman_exact() {
    let ds = MicroSpec::static_counts(500, 500)
        .dupe(10)
        .seed(9)
        .generate();
    let expect = match_count(&ds.r, &ds.s, ds.window);
    for threads in [1usize, 3, 4] {
        let cfg = RunConfig::with_threads(threads).record_all();
        let result = execute(Algorithm::Handshake, &ds, &cfg);
        assert_eq!(result.matches, expect, "handshake with {threads} threads");
    }
}

#[test]
fn real_workload_counts_agree_across_algorithms() {
    // The four real-world generators at tiny scale: all algorithms must
    // count the same number of matches.
    use iawj_study::datagen::{debs, rovio, stock, ysb};
    for ds in [
        stock(0.02, 3),
        rovio(0.001, 3),
        ysb(0.001, 3),
        debs(0.005, 3),
    ] {
        let expect = match_count(&ds.r, &ds.s, ds.window);
        for algo in Algorithm::STUDIED {
            let cfg = RunConfig::with_threads(4).speedup(500.0);
            let result = execute(algo, &ds, &cfg);
            assert_eq!(result.matches, expect, "{algo} on {}", ds.name);
        }
    }
}
