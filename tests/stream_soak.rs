//! Sustained-ingest soak: several wall-seconds of rate-limited streaming
//! through deliberately small ingress queues. Locks down the service
//! properties a short unit test can't see:
//!
//! - backpressure actually engages (the producer observably blocks while
//!   the operator is busy closing windows) and is journaled,
//! - the watermark only ever advances across metrics ticks,
//! - resident pane state stays bounded by the watermark lag — a fixed
//!   handful of panes — not by the length of the stream.
//!
//! CI runs this in release under the `stream-soak` job with a hard
//! timeout; it also passes (slower) in a debug `cargo test`.

use iawj_study::common::spsc::stream_channel;
use iawj_study::common::{Rate, Tuple};
use iawj_study::core::streaming::{StreamConfig, StreamingJoin, WM_END};
use iawj_study::core::windowing::{windows_for, WindowSpec};
use iawj_study::core::{Algorithm, RunConfig};
use iawj_study::datagen::rate_stream;
use iawj_study::obs::MARK_STREAM_BACKPRESSURE;
use std::time::{Duration, Instant};

/// Pump both sides from one thread, interleaved by timestamp and paced
/// against the wall clock at `speedup`× real time. A single pacing
/// schedule keeps inter-source skew bounded by the queue capacities, so
/// the resident-pane assertion below tests the operator, not the OS
/// scheduler; blocking `send` makes the pump fall behind schedule (and
/// catch up) whenever the operator is busy — that is the backpressure
/// under test.
fn pump_interleaved(
    r: Vec<Tuple>,
    s: Vec<Tuple>,
    tx_r: iawj_study::common::spsc::StreamSender<Tuple>,
    tx_s: iawj_study::common::spsc::StreamSender<Tuple>,
    speedup: f64,
) -> std::thread::JoinHandle<()> {
    std::thread::spawn(move || {
        let epoch = Instant::now();
        let (mut i, mut j) = (0usize, 0usize);
        while i < r.len() || j < s.len() {
            let take_r = j == s.len() || (i < r.len() && r[i].ts <= s[j].ts);
            let t = if take_r { r[i] } else { s[j] };
            let due_ms = t.ts as f64 / speedup;
            let elapsed = epoch.elapsed().as_secs_f64() * 1e3;
            if elapsed < due_ms {
                std::thread::sleep(Duration::from_secs_f64((due_ms - elapsed) / 1e3));
            }
            let sent = if take_r {
                i += 1;
                tx_r.send(t)
            } else {
                j += 1;
                tx_s.send(t)
            };
            if sent.is_err() {
                return;
            }
        }
    })
}

#[test]
fn sustained_ingest_backpressures_and_bounds_state() {
    // ~64k tuples/side over 16 s of stream time, replayed at 4x => ~4 s of
    // wall-clock rate-limited ingest. 500 ms tumbling windows: 32 closes,
    // each a real engine run the pump must wait out through cap-8 queues.
    let span_ms = 16_000;
    let spec = WindowSpec::Tumbling { len_ms: 500 };
    let r = rate_stream(Rate::PerMs(4.0), span_ms, 512, 101);
    let s = rate_stream(Rate::PerMs(4.0), span_ms, 512, 202);
    let expected_windows = windows_for(spec, &r, &s).len();
    let (nr, ns) = (r.len() as u64, s.len() as u64);

    let cfg = StreamConfig::new(spec, Algorithm::Npj)
        .run_config(RunConfig::with_threads(2))
        .tick_every_ms(100.0);
    let (tx_r, rx_r) = stream_channel(8);
    let (tx_s, rx_s) = stream_channel(8);
    let pump = pump_interleaved(r, s, tx_r, tx_s, 4.0);
    let report = StreamingJoin::new(cfg).run(rx_r, rx_s, |_| {}, |_| {});
    pump.join().unwrap();

    // Nothing lost: rate limiting + blocking backpressure never drop.
    assert_eq!(report.ingested_r, nr);
    assert_eq!(report.ingested_s, ns);
    assert_eq!(report.late_dropped, 0);
    assert_eq!(report.windows.len(), expected_windows);
    assert_eq!(report.final_watermark_ms, WM_END);

    // Backpressure engaged and was journaled.
    assert!(
        report.backpressure_waits >= 1,
        "expected the pump to block at least once (waits = {})",
        report.backpressure_waits
    );
    assert!(report.count_marks(MARK_STREAM_BACKPRESSURE) >= 1);

    // The watermark is monotone across every metrics tick.
    assert!(report.ticks.len() >= 2, "soak must span several ticks");
    let wms: Vec<u64> = report.ticks.iter().map(|t| t.watermark_ms).collect();
    assert!(
        wms.windows(2).all(|w| w[0] <= w[1]),
        "watermark regressed: {wms:?}"
    );

    // Resident state is bounded by the watermark lag (queue capacity +
    // ingest batch + one open window), not by the 32-window stream.
    assert!(
        report.peak_resident_panes <= 6,
        "pane state grew with the stream: peak {} of {} windows",
        report.peak_resident_panes,
        expected_windows
    );
}
