//! Property tests of the arrival-gated path: under real time compression
//! and arbitrary arrival patterns, every distribution scheme must deliver
//! exactly the reference matches, and no view may ever yield a tuple
//! before its arrival time.

use iawj_study::core::reference::match_count;
use iawj_study::core::{execute, Algorithm, RunConfig};
use iawj_study::datagen::MicroSpec;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig { cases: 8, ..ProptestConfig::default() })]

    #[test]
    fn gated_runs_are_exact_for_all_schemes(
        rate in 1.0f64..20.0,
        window in 20u32..120,
        dupe in 1usize..8,
        skew_ts in 0u8..2,
        threads in 1usize..5,
        seed in 0u64..300,
    ) {
        let ds = MicroSpec {
            rate_r: rate,
            rate_s: rate * 1.5,
            window_ms: window,
            dupe,
            skew_key: 0.0,
            skew_ts: skew_ts as f64 * 1.2,
            static_data: false,
            count_r: None,
            count_s: None,
            seed,
        }
        .generate();
        let expect = match_count(&ds.r, &ds.s, ds.window);
        // Heavy compression: the whole window replays in ~window/500 real ms,
        // exercising the stall/resume path under scheduler noise.
        for algo in [
            Algorithm::ShjJm,
            Algorithm::ShjJb,
            Algorithm::PmjJm,
            Algorithm::PmjJb,
            Algorithm::HybridShj,
            Algorithm::Npj,
            Algorithm::MPass,
        ] {
            let cfg = RunConfig::with_threads(threads).speedup(500.0);
            let result = execute(algo, &ds, &cfg);
            prop_assert_eq!(result.matches, expect, "{} diverged under gating", algo);
        }
    }

    #[test]
    fn no_match_is_emitted_before_both_inputs_arrived(
        rate in 2.0f64..15.0,
        seed in 0u64..100,
    ) {
        // Latency = emit - max(arrivals) must never be negative by more
        // than clock-read jitter; the sink clamps at 0, so instead check
        // emission stamps against arrival stamps directly.
        let ds = MicroSpec::with_rates(rate, rate).window_ms(100).seed(seed).generate();
        let cfg = RunConfig::with_threads(2).record_all().speedup(100.0);
        let result = execute(Algorithm::ShjJm, &ds, &cfg);
        for m in &result.samples {
            let arrival = m.r_ts.max(m.s_ts) as f64;
            // EmitClock caches up to 32 reads; allow 5 stream-ms of slack
            // (at 100x compression that is 50 us of real time).
            prop_assert!(
                m.emit_ms + 5.0 >= arrival,
                "match ({}, {}, {}) emitted at {} before arrival {}",
                m.key, m.r_ts, m.s_ts, m.emit_ms, arrival
            );
        }
    }
}
